//! Multi-tenant filter serving: one [`TenantStore`] per named tenant,
//! bundling the tenant's filter, its FP-feedback log, and its adaptation
//! policy behind interior mutability so a server can share one store
//! across every connection thread.
//!
//! ## Hot swap
//!
//! The filter lives behind `RwLock<Arc<dyn DynFilter>>`. Queries clone
//! the `Arc` under the read lock ([`TenantStore::snapshot`]) and probe
//! outside it, so an in-flight batch keeps one consistent filter for its
//! whole run even while a rebuild swaps the tenant to a new generation.
//! [`TenantStore::rebuild_now`] re-encodes the current snapshot,
//! reloads it as a private copy (the copy-on-write word store means the
//! reload shares payload words until the rebuild's first mutation
//! promotes them to owned), rebuilds at the same geometry with hints
//! mined from the FP log, and swaps the `Arc` under the write lock.
//! Readers never observe a half-rebuilt filter; they hold either the old
//! generation or the new one.
//!
//! ## Feedback
//!
//! Feedback ([`TenantStore::record_fp`]) and lookup accounting go to a
//! mutex-guarded [`FpLog`]; [`TenantStore::wants_rebuild`] asks the
//! tenant's [`AdaptPolicy`] whether the logged waste justifies paying
//! for a rebuild. The serving layer (`habf-serve`) maps protocol frames
//! onto exactly these entry points.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::adapt::{AdaptPolicy, FpLog, RebuildKind};
use crate::filter_api::{BuildError, BuildInput, DynFilter};
use crate::registry::{self, OpenError};

/// Default FP-log capacity per tenant: enough to mine a meaningful hint
/// set without unbounded memory per tenant.
pub const DEFAULT_FP_LOG_CAPACITY: usize = 65_536;

/// Default per-event geometric decay of the tenant FP log.
pub const DEFAULT_FP_DECAY: f64 = 0.999;

/// Why a tenant rebuild could not run or failed.
#[derive(Debug)]
pub enum RebuildError {
    /// The tenant was opened without its positive key set; a rebuild
    /// would have no member list to preserve zero false negatives over.
    NoMembers,
    /// The tenant's filter does not expose the rebuild capability.
    NotRebuildable,
    /// Re-loading the snapshot image for the private rebuild copy failed
    /// (this indicates a serialization bug, not bad input).
    Reload(crate::persist::PersistError),
    /// The rebuild itself failed.
    Build(BuildError),
}

impl core::fmt::Display for RebuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoMembers => write!(f, "tenant has no positive set; rebuild unavailable"),
            Self::NotRebuildable => write!(f, "filter does not support rebuild"),
            Self::Reload(e) => write!(f, "snapshot reload failed: {e}"),
            Self::Build(e) => write!(f, "rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for RebuildError {}

/// Why a tenant insert was refused.
#[derive(Debug)]
pub enum InsertError {
    /// The tenant's filter does not expose the growth capability —
    /// inserting into a fixed-geometry filter would silently void its
    /// zero-FN / FP-envelope contract, so it is a typed refusal instead.
    NotGrowable {
        /// Registry id of the filter that refused.
        id: &'static str,
    },
    /// Re-loading the snapshot image for the private insert copy failed
    /// (this indicates a serialization bug, not bad input).
    Reload(crate::persist::PersistError),
}

impl core::fmt::Display for InsertError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NotGrowable { id } => {
                write!(f, "filter {id:?} cannot grow past its design capacity")
            }
            Self::Reload(e) => write!(f, "snapshot reload failed: {e}"),
        }
    }
}

impl std::error::Error for InsertError {}

/// Outcome of a completed [`TenantStore::insert_keys`].
#[derive(Clone, Debug)]
pub struct InsertReport {
    /// Keys inserted (all of them — growable inserts are infallible).
    pub accepted: usize,
    /// Filter generations (tiers) now serving.
    pub generations: usize,
    /// Filter saturation after the inserts.
    pub saturation: f64,
}

/// Outcome of a completed [`TenantStore::rebuild_now`].
#[derive(Clone, Debug)]
pub struct RebuildOutcome {
    /// Mined hints the rebuild optimized against.
    pub hints: usize,
    /// Filter generation now serving (increments on every swap).
    pub generation: u64,
}

/// A point-in-time view of one tenant, for stats frames and operators.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Registry id of the serving filter.
    pub filter_id: &'static str,
    /// Space of the serving filter, bits.
    pub space_bits: usize,
    /// Filter generation (swap count since open).
    pub generation: u64,
    /// Lookups answered since the last window reset.
    pub lookups: u64,
    /// FP events recorded since the last window reset.
    pub fp_events: u64,
    /// Decayed wasted cost currently in the FP window.
    pub wasted_cost: f64,
    /// Whether the adaptation policy currently wants a rebuild.
    pub wants_rebuild: bool,
    /// Filter saturation (keys held over design capacity).
    pub saturation: f64,
    /// Filter generations answering a probe (tiers of a growable stack).
    pub tiers: usize,
    /// What kind the last completed rebuild was, if any.
    pub last_rebuild: Option<RebuildKind>,
}

impl TenantStats {
    /// The stats as a one-line JSON object (the wire stats payload).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"filter_id\":\"{}\",\
             \"space_bits\":{},\
             \"generation\":{},\
             \"lookups\":{},\
             \"fp_events\":{},\
             \"wasted_cost\":{:.3},\
             \"wants_rebuild\":{},\
             \"saturation\":{:.4},\
             \"tiers\":{},\
             \"rebuild_kind\":{}}}",
            self.filter_id,
            self.space_bits,
            self.generation,
            self.lookups,
            self.fp_events,
            self.wasted_cost,
            self.wants_rebuild,
            self.saturation,
            self.tiers,
            match self.last_rebuild {
                Some(kind) => format!("\"{kind}\""),
                None => "null".to_string(),
            }
        )
    }
}

/// One tenant's serving state: filter + FP log + adaptation policy.
///
/// All entry points take `&self`; a server wraps each store in an `Arc`
/// and shares it across connection threads.
pub struct TenantStore {
    name: String,
    filter: RwLock<Arc<dyn DynFilter>>,
    log: Mutex<FpLog>,
    policy: AdaptPolicy,
    /// Positive keys the tenant's filter must keep answering `true`;
    /// `None` when opened filter-only, which disables rebuilds. Behind a
    /// mutex because [`TenantStore::insert_keys`] appends to it.
    members: Mutex<Option<Vec<Vec<u8>>>>,
    /// Serializes mutations (rebuilds *and* inserts): concurrent
    /// triggers must not both snapshot the same generation and lose one
    /// mutation to the other's swap.
    rebuild_gate: Mutex<()>,
    generation: AtomicU64,
    /// What kind the last completed rebuild was (stats surface).
    last_rebuild: Mutex<Option<RebuildKind>>,
}

impl TenantStore {
    /// Wraps an already-built (or loaded) filter as a tenant.
    #[must_use]
    pub fn new(name: impl Into<String>, filter: Box<dyn DynFilter>, policy: AdaptPolicy) -> Self {
        Self {
            name: name.into(),
            filter: RwLock::new(Arc::from(filter)),
            log: Mutex::new(FpLog::new(DEFAULT_FP_LOG_CAPACITY, DEFAULT_FP_DECAY)),
            policy,
            members: Mutex::new(None),
            rebuild_gate: Mutex::new(()),
            generation: AtomicU64::new(0),
            last_rebuild: Mutex::new(None),
        }
    }

    /// Opens a tenant from a filter image on disk via the zero-copy
    /// mmap loader ([`registry::load_mmap`]).
    ///
    /// # Errors
    /// Propagates the loader's I/O and typed persistence errors.
    pub fn open(
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
        policy: AdaptPolicy,
    ) -> Result<Self, OpenError> {
        let loaded = registry::load_mmap(path)?;
        Ok(Self::new(name, loaded.filter, policy))
    }

    /// Attaches the tenant's positive key set, enabling rebuilds.
    #[must_use]
    pub fn with_members(self, members: Vec<Vec<u8>>) -> Self {
        *self
            .members
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(members);
        self
    }

    /// The tenant's name (the wire routing key).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this tenant can serve a rebuild request.
    #[must_use]
    pub fn can_rebuild(&self) -> bool {
        self.members
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some()
    }

    /// The current filter generation, starting at 0 and incrementing on
    /// every hot swap.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Clones the current filter `Arc` under the read lock. Probe
    /// through the snapshot, not through repeated `snapshot()` calls, so
    /// one logical operation sees one filter generation.
    #[must_use]
    pub fn snapshot(&self) -> Arc<dyn DynFilter> {
        self.filter
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Answers a batch of keys against one consistent snapshot, through
    /// the prefetch-pipelined batch capability when the filter has one
    /// and the scalar loop otherwise. Notes `keys.len()` lookups in the
    /// FP log (the adaptation denominator).
    #[must_use]
    pub fn contains_batch(&self, keys: &[&[u8]]) -> Vec<bool> {
        let snapshot = self.snapshot();
        let answers = match snapshot.as_batch() {
            Some(batch) => batch.contains_batch(keys),
            None => keys.iter().map(|k| snapshot.contains(k)).collect(),
        };
        self.log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .note_lookups(keys.len() as u64);
        answers
    }

    /// Records one false-positive (or costed-miss) feedback event.
    /// Non-finite and non-positive costs are rejected inside [`FpLog`];
    /// feedback is untrusted wire input.
    pub fn record_fp(&self, key: &[u8], cost: f64) {
        self.log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .record(key, cost);
    }

    /// Whether the tenant's policy currently wants a rebuild.
    #[must_use]
    pub fn wants_rebuild(&self) -> bool {
        self.decide_rebuild().is_some()
    }

    /// The full policy decision: FP pressure, saturation, and generation
    /// count combined into the [`RebuildKind`] that fixes the dominant
    /// problem (`None` when nothing has triggered).
    #[must_use]
    pub fn decide_rebuild(&self) -> Option<RebuildKind> {
        let snapshot = self.snapshot();
        let log = self
            .log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.policy
            .decide(&log, snapshot.saturation(), snapshot.generations())
    }

    /// A point-in-time stats view of the tenant.
    #[must_use]
    pub fn stats(&self) -> TenantStats {
        let snapshot = self.snapshot();
        let (lookups, fp_events, wasted_cost, wants) = {
            let log = self
                .log
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (
                log.window_lookups(),
                log.window_fp_events(),
                log.decayed_wasted_cost(),
                self.policy
                    .decide(&log, snapshot.saturation(), snapshot.generations())
                    .is_some(),
            )
        };
        TenantStats {
            filter_id: snapshot.filter_id(),
            space_bits: snapshot.space_bits(),
            generation: self.generation(),
            lookups,
            fp_events,
            wasted_cost,
            wants_rebuild: wants,
            saturation: snapshot.saturation(),
            tiers: snapshot.generations(),
            last_rebuild: *self
                .last_rebuild
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Inserts keys into the tenant's filter through the growth
    /// capability and hot-swaps the grown filter in, leaving in-flight
    /// snapshot holders on the previous one. The inserts run on a
    /// private copy (snapshot bytes → fresh filter, copy-on-write word
    /// sharing keeps that cheap), so queries keep flowing for the whole
    /// mutation. The tenant's member list (when attached) absorbs the
    /// new keys so a later fold-back rebuild preserves them.
    ///
    /// # Errors
    /// [`InsertError::NotGrowable`] when the filter lacks the capability
    /// — a typed refusal, never a silent zero-FN degradation.
    pub fn insert_keys(&self, keys: &[Vec<u8>]) -> Result<InsertReport, InsertError> {
        let _gate = self
            .rebuild_gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let snapshot = self.snapshot();
        let mut fresh = registry::load_bytes(snapshot.to_container_bytes())
            .map_err(InsertError::Reload)?
            .filter;
        {
            let growable = fresh.as_growable().ok_or(InsertError::NotGrowable {
                id: snapshot.filter_id(),
            })?;
            for key in keys {
                growable.insert(key);
            }
        }
        let report = InsertReport {
            accepted: keys.len(),
            generations: fresh.generations(),
            saturation: fresh.saturation(),
        };
        if let Some(members) = self
            .members
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_mut()
        {
            members.extend(keys.iter().cloned());
        }
        *self
            .filter
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Arc::from(fresh);
        Ok(report)
    }

    /// Rebuilds the tenant's filter against hints mined from the FP log
    /// and hot-swaps it in, leaving in-flight snapshot holders on the
    /// old generation.
    ///
    /// The rebuild runs on a private copy (snapshot bytes → fresh
    /// filter), so queries keep flowing on the serving filter for the
    /// whole rebuild; only the final `Arc` swap takes the write lock.
    /// The FP window resets on success, so the same events cannot
    /// immediately re-trigger the policy against the new generation.
    ///
    /// # Errors
    /// [`RebuildError::NoMembers`] without a positive set,
    /// [`RebuildError::NotRebuildable`] when the filter lacks the
    /// capability, and the underlying build error otherwise.
    pub fn rebuild_now(&self, seed: u64, max_hints: usize) -> Result<RebuildOutcome, RebuildError> {
        let _gate = self
            .rebuild_gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let members_guard = self
            .members
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let members = members_guard.as_ref().ok_or(RebuildError::NoMembers)?;

        let snapshot = self.snapshot();
        // Classify the rebuild before it runs: a multi-tier stack folds,
        // an overfilled single filter resizes, and the classic case
        // re-hashes at its existing geometry. (For a growable filter the
        // Rebuildable impl *is* the fold — the kind is the record of why
        // the work was paid for.)
        let kind = if snapshot.generations() > 1 {
            RebuildKind::Compact
        } else if snapshot.saturation() > 1.0 + 1e-9 {
            RebuildKind::Resize
        } else {
            RebuildKind::Rehash
        };
        let mut fresh = registry::load_bytes(snapshot.to_container_bytes())
            .map_err(RebuildError::Reload)?
            .filter;
        let hints = self
            .log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .mine_hints(max_hints);
        let input = BuildInput::from_members(members).with_hints(&hints);
        fresh
            .as_rebuildable()
            .ok_or(RebuildError::NotRebuildable)?
            .rebuild(&input, seed)
            .map_err(RebuildError::Build)?;

        *self
            .filter
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Arc::from(fresh);
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        *self
            .last_rebuild
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(kind);
        self.log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .reset_window();
        Ok(RebuildOutcome {
            hints: hints.len(),
            generation,
        })
    }
}

impl core::fmt::Debug for TenantStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TenantStore")
            .field("name", &self.name)
            .field("generation", &self.generation())
            .field("can_rebuild", &self.can_rebuild())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_api::FilterSpec;

    fn members(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("user:{i}").into_bytes()).collect()
    }

    fn store(n: usize) -> TenantStore {
        let keys = members(n);
        let input = BuildInput::from_members(&keys);
        let filter = FilterSpec::habf()
            .bits_per_key(10.0)
            .build(&input)
            .expect("build");
        TenantStore::new("t", filter, AdaptPolicy::cost_threshold(5.0)).with_members(keys)
    }

    #[test]
    fn batch_answers_match_scalar_and_note_lookups() {
        let s = store(500);
        let keys = members(500);
        let probe: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let got = s.contains_batch(&probe);
        assert!(got.iter().all(|&b| b), "zero FN over members");
        let snap = s.snapshot();
        let scalar: Vec<bool> = probe.iter().map(|k| snap.contains(k)).collect();
        assert_eq!(got, scalar);
    }

    #[test]
    fn feedback_drives_policy_and_rebuild_swaps_generation() {
        let s = store(400);
        assert_eq!(s.generation(), 0);
        assert!(!s.wants_rebuild());
        for i in 0..64 {
            s.record_fp(format!("ghost:{}", i % 4).as_bytes(), 3.0);
        }
        assert!(s.wants_rebuild(), "64×3.0 cost crosses threshold 5.0");

        let before = s.snapshot();
        let outcome = s.rebuild_now(7, 1024).expect("rebuild");
        assert_eq!(outcome.generation, 1);
        assert!(
            outcome.hints >= 1 && outcome.hints <= 4,
            "{}",
            outcome.hints
        );
        assert_eq!(s.generation(), 1);
        // The old snapshot stays servable (readers keep their Arc), the
        // new generation still has zero FN, and the window reset.
        let keys = members(400);
        for k in &keys {
            assert!(before.contains(k));
            assert!(s.snapshot().contains(k));
        }
        assert!(!s.wants_rebuild());
    }

    #[test]
    fn rebuild_without_members_is_a_typed_error() {
        let keys = members(64);
        let input = BuildInput::from_members(&keys);
        let filter = FilterSpec::habf()
            .bits_per_key(10.0)
            .build(&input)
            .expect("build");
        let s = TenantStore::new("t", filter, AdaptPolicy::cost_threshold(1.0));
        assert!(!s.can_rebuild());
        assert!(matches!(s.rebuild_now(0, 16), Err(RebuildError::NoMembers)));
    }

    #[test]
    fn non_rebuildable_filter_is_a_typed_error() {
        let keys = members(64);
        let input = BuildInput::from_members(&keys);
        let filter = FilterSpec::xor().build(&input).expect("build");
        let s = TenantStore::new("t", filter, AdaptPolicy::cost_threshold(1.0)).with_members(keys);
        assert!(matches!(
            s.rebuild_now(0, 16),
            Err(RebuildError::NotRebuildable)
        ));
    }

    fn scalable_store(n: usize) -> TenantStore {
        let keys = members(n);
        let input = BuildInput::from_members(&keys);
        let filter = FilterSpec::scalable_habf()
            .bits_per_key(10.0)
            .build(&input)
            .expect("build");
        TenantStore::new("t", filter, AdaptPolicy::cost_threshold(5.0)).with_members(keys)
    }

    #[test]
    fn insert_grows_a_scalable_tenant_without_bumping_generation() {
        let s = scalable_store(64);
        let burst: Vec<Vec<u8>> = (0..512).map(|i| format!("late:{i}").into_bytes()).collect();
        let report = s.insert_keys(&burst).expect("growable tenant");
        assert_eq!(report.accepted, 512);
        assert!(report.generations > 1, "burst should open new tiers");
        assert_eq!(s.generation(), 0, "inserts are not rebuilds");
        let snap = s.snapshot();
        for k in members(64).iter().chain(&burst) {
            assert!(snap.contains(k), "zero FN across the grown stack");
        }
        let stats = s.stats();
        assert!(stats.tiers > 1);
        assert!(
            stats.to_json().contains("\"tiers\":"),
            "{}",
            stats.to_json()
        );
    }

    #[test]
    fn insert_on_fixed_capacity_filter_is_a_typed_error() {
        let s = store(64);
        let err = s.insert_keys(&members(1)).expect_err("habf cannot grow");
        match err {
            InsertError::NotGrowable { id } => assert_eq!(id, "habf"),
            other => panic!("want NotGrowable, got {other:?}"),
        }
        assert_eq!(s.generation(), 0);
    }

    #[test]
    fn rebuild_after_growth_folds_tiers_and_records_compact() {
        let s = scalable_store(64);
        let burst: Vec<Vec<u8>> = (0..512).map(|i| format!("late:{i}").into_bytes()).collect();
        s.insert_keys(&burst).expect("grow");
        // Keep the member list honest so the fold covers the burst too.
        assert!(s.stats().tiers > 1);
        assert!(s.stats().last_rebuild.is_none());

        let outcome = s.rebuild_now(11, 256).expect("fold");
        assert_eq!(outcome.generation, 1);
        let stats = s.stats();
        assert_eq!(stats.tiers, 1, "fold-back collapses the stack");
        assert_eq!(stats.last_rebuild, Some(RebuildKind::Compact));
        assert!(stats.to_json().contains("\"rebuild_kind\":\"compact\""));
        let snap = s.snapshot();
        for k in members(64).iter().chain(&burst) {
            assert!(snap.contains(k), "zero FN after fold-back");
        }
    }

    #[test]
    fn single_tier_rebuild_records_rehash() {
        let s = store(128);
        s.rebuild_now(3, 64).expect("rebuild");
        assert_eq!(s.stats().last_rebuild, Some(RebuildKind::Rehash));
    }

    #[test]
    fn stats_reflect_traffic() {
        let s = store(100);
        let keys = members(100);
        let probe: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let _ = s.contains_batch(&probe);
        s.record_fp(b"ghost", 2.0);
        let stats = s.stats();
        assert_eq!(stats.filter_id, "habf");
        assert_eq!(stats.lookups, 100);
        assert_eq!(stats.fp_events, 1);
        assert!(stats.space_bits > 0);
        let json = stats.to_json();
        assert!(json.contains("\"filter_id\":\"habf\""), "{json}");
        assert!(json.contains("\"lookups\":100"), "{json}");
    }
}
