//! Two-Phase Joint Optimization (paper §III-D, Fig 3, Fig 6, Fig 7).
//!
//! TPJO is the construction-time optimizer of HABF. Starting from a Bloom
//! filter where every positive key uses the initial functions `H0`, it
//! walks the *collision queue* — the negative keys currently misidentified
//! as positive, in descending cost order — and for each collision key
//! `e_ck` tries to *adjust* one positive key `e_s` away from a bit that
//! only `e_s` maps (found through [`VIndex`]), so that the bit can be
//! cleared and `e_ck` turns into a true negative.
//!
//! **Phase-I** picks the replacement hash function `h_c ∈ H − φ(e_s)`:
//!
//! * class (a): `σ(h_c(e_s)) = 1` — the replacement lands on an
//!   already-set bit; no side effects at all;
//! * class (b): the target bit is 0 but its [`Gamma`] bucket has no
//!   conflicts — setting it creates no new collision keys;
//! * class (c): every candidate bucket conflicts — take the bucket `ν'`
//!   maximizing the non-negative `Θ(e_ck) − Θ(ν')` and requeue the newly
//!   conflicted keys (tail of the queue). If every bucket costs more than
//!   `e_ck`, the adjustment is not worth it and the key is skipped.
//!
//! **Phase-II** tests whether the adjusted `φ'(e_s)` actually fits into the
//! HashExpressor; among the insertable candidates the one sharing the most
//! cells with already-stored chains is committed (the paper's "maximized
//! overlap" rule). If nothing fits, the next unit of `ξ_ck` is tried; if
//! all fail, `e_ck` stays a false positive.
//!
//! f-HABF runs the same loop with `use_gamma = false`, which restricts
//! phase-I to class (a) — adjustments that set no new bit and therefore
//! need no conflict detection (paper §III-G).

use crate::gamma::Gamma;
use crate::hash_expressor::HashExpressor;
use crate::vindex::VIndex;
use crate::MAX_K;
use habf_hashing::{HashId, HashProvider};
use habf_util::{BitVec, Xoshiro256};
use std::collections::VecDeque;

/// Configuration of one TPJO run.
#[derive(Clone, Debug)]
pub struct TpjoConfig {
    /// Hash functions per key (paper default 3).
    pub k: usize,
    /// Bloom bits `m` (the `∆2` share of the budget).
    pub m: usize,
    /// HashExpressor cells `ω` (the `∆1` share divided by `cell_bits`).
    pub omega: usize,
    /// HashExpressor cell width `α` (paper default 4).
    pub cell_bits: u32,
    /// `false` reproduces f-HABF's Γ-disabled fast construction.
    pub use_gamma: bool,
    /// How many times a key bumped back into the collision queue is
    /// retried before it is abandoned (termination guard; the paper's
    /// queue-tail re-insertions have no explicit bound).
    pub requeue_cap: u8,
    /// Seed for `H0` selection and the Case-1 random choice.
    pub seed: u64,
    /// Ablation: allow class-(c) adjustments (sacrifice cheaper optimized
    /// keys for a costlier collision key). Default `true`.
    pub enable_class_c: bool,
    /// Ablation: among insertable candidates, prefer the plan sharing the
    /// most HashExpressor cells (the paper's "maximized overlap" rule);
    /// with `false` the first insertable candidate wins. Default `true`.
    pub overlap_tiebreak: bool,
}

/// Counters describing what the optimizer did (drives Figs 8/9 and the
/// `F_habf ≤ (ω+t)/ω · F*_bf` bound).
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// `|S|`.
    pub positives: usize,
    /// `|O|`.
    pub negatives: usize,
    /// Initial collision-queue size `T`.
    pub initial_collision_keys: usize,
    /// Collision keys optimized (`t`).
    pub optimized: usize,
    /// Collision keys that could not be optimized.
    pub failed: usize,
    /// Keys that re-entered the queue after a class-(c) adjustment.
    pub requeued: usize,
    /// Positive keys whose chains were stored in the HashExpressor.
    pub adjusted_positives: usize,
    /// Collision keys resolved as a side effect of earlier adjustments
    /// (tested negative when popped).
    pub resolved_lazily: usize,
}

/// Everything the query structure needs, as produced by TPJO.
pub struct TpjoOutput {
    /// The optimized Bloom bit array.
    pub bloom: BitVec,
    /// The populated HashExpressor.
    pub he: HashExpressor,
    /// The initial hash functions `H0` (ids into the provider).
    pub h0: Vec<HashId>,
    /// Optimizer counters.
    pub stats: BuildStats,
}

/// Per-negative-key runtime state.
#[derive(Clone, Copy, Debug)]
struct NegState {
    is_collision: bool,
    requeues: u8,
}

/// Runs TPJO over `positives` and cost-annotated `negatives`.
///
/// The provider's id space must cover at least `config.k` functions and at
/// most the HashExpressor's addressable range
/// (`2^(cell_bits−1) − 1`).
///
/// An empty positive set is allowed and degenerates to an all-zeros
/// filter that answers every query negatively (zero FNR vacuously) — the
/// case a sharded build hits when the splitter assigns a shard no keys.
///
/// # Panics
/// Panics on an infeasible configuration (`k` larger than the provider,
/// ids not addressable, `m == 0`).
pub fn run<P: HashProvider>(
    positives: &[impl AsRef<[u8]>],
    negatives: &[(impl AsRef<[u8]>, f64)],
    provider: &P,
    config: &TpjoConfig,
) -> TpjoOutput {
    let k = config.k;
    let m = config.m;
    let n_hash = provider.len();
    assert!(m > 0, "Bloom array needs at least one bit");
    assert!((1..=MAX_K).contains(&k), "k {k} not in 1..={MAX_K}");
    assert!(k <= n_hash, "k {k} exceeds provider size {n_hash}");
    let max_id = (1usize << (config.cell_bits - 1)) - 1;
    assert!(
        n_hash <= max_id,
        "provider size {n_hash} exceeds the {}-bit cell id space {max_id}",
        config.cell_bits
    );

    let mut rng = Xoshiro256::new(config.seed);
    let h0: Vec<HashId> = rng
        .distinct_indices(k, n_hash)
        .into_iter()
        .map(|i| (i + 1) as HashId)
        .collect();

    let mut stats = BuildStats {
        positives: positives.len(),
        negatives: negatives.len(),
        ..BuildStats::default()
    };

    // ---- Initialization: insert S with H0, build the Bloom array and V.
    let mut bloom = BitVec::new(m);
    let mut v = VIndex::new(m);
    let mut pos_phis: Vec<HashId> = Vec::with_capacity(positives.len() * k);
    let mut pos_positions: Vec<u32> = Vec::with_capacity(positives.len() * k);
    let mut scratch: Vec<u32> = Vec::with_capacity(k);
    for (idx, key) in positives.iter().enumerate() {
        positions_batch(provider, key.as_ref(), &h0, m, &mut scratch);
        for (&id, &p) in h0.iter().zip(scratch.iter()) {
            bloom.set(p as usize);
            v.insert(p as usize, idx as u32);
            pos_phis.push(id);
            pos_positions.push(p);
        }
    }

    // ---- Classify O into collision keys and optimized keys.
    let mut neg_positions: Vec<u32> = Vec::with_capacity(negatives.len() * k);
    let mut neg_state: Vec<NegState> = Vec::with_capacity(negatives.len());
    let mut gamma = config.use_gamma.then(|| Gamma::new(m));
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut initial_ck: Vec<u32> = Vec::new();
    for (idx, (key, _cost)) in negatives.iter().enumerate() {
        positions_batch(provider, key.as_ref(), &h0, m, &mut scratch);
        let is_collision = scratch.iter().all(|&p| bloom.get(p as usize));
        neg_positions.extend_from_slice(&scratch);
        neg_state.push(NegState {
            is_collision,
            requeues: 0,
        });
        if is_collision {
            initial_ck.push(idx as u32);
        } else if let Some(g) = gamma.as_mut() {
            g.insert(idx as u32, &scratch);
        }
    }
    // Collision queue in descending cost order (paper Fig 6).
    initial_ck.sort_by(|&a, &b| {
        negatives[b as usize]
            .1
            .partial_cmp(&negatives[a as usize].1)
            .expect("NaN cost")
    });
    stats.initial_collision_keys = initial_ck.len();
    queue.extend(initial_ck);

    let mut he = HashExpressor::new(config.omega, config.cell_bits, k);
    let mut in_he = vec![false; positives.len()];
    let neg_pos_of = |flat: &Vec<u32>, idx: u32| -> [u32; MAX_K] {
        let mut out = [0u32; MAX_K];
        out[..k].copy_from_slice(&flat[idx as usize * k..idx as usize * k + k]);
        out
    };

    // ---- Main loop over the collision queue.
    while let Some(eck) = queue.pop_front() {
        let eck_us = eck as usize;
        let positions = &neg_positions[eck_us * k..eck_us * k + k];
        // Lazy re-test: earlier bit clears may have resolved this key.
        if positions.iter().any(|&p| !bloom.get(p as usize)) {
            if neg_state[eck_us].is_collision {
                neg_state[eck_us].is_collision = false;
                stats.resolved_lazily += 1;
                if let Some(g) = gamma.as_mut() {
                    g.insert(eck, positions);
                }
            }
            continue;
        }
        neg_state[eck_us].is_collision = true;
        let eck_cost = negatives[eck_us].1;

        // ξ_ck: adjustable units among e_ck's positions.
        let mut xi: Vec<(u32, u32)> = Vec::with_capacity(k); // (unit, e_s)
        for (i, &u) in positions.iter().enumerate() {
            if positions[..i].contains(&u) {
                continue; // duplicate position
            }
            if let Some(es) = v.single_key(u as usize) {
                if !in_he[es as usize] {
                    xi.push((u, es));
                }
            }
        }

        let mut committed = false;
        'units: for &(u, es) in &xi {
            let es_us = es as usize;
            let es_key = positives[es_us].as_ref();
            let phi = &pos_phis[es_us * k..es_us * k + k];
            // Which slot of φ(e_s) maps to u? (unique: u is single-mapped)
            let Some(slot) = (0..k).find(|&j| pos_positions[es_us * k + j] == u) else {
                continue; // stale V entry (defensive; should not happen)
            };
            let hu = phi[slot];
            debug_assert_eq!(
                provider.position(hu, es_key, m),
                u as usize,
                "V desynchronized from φ(e_s)"
            );

            // Candidate replacements from H_c = H − φ(e_s).
            let mut direct: Vec<(HashId, u32)> = Vec::new(); // classes (a)+(b)

            // Γ disabled (f-HABF): adjustments onto a zero bit are made
            // *blindly* — no conflict detection runs, so new collision keys
            // may appear unnoticed. This is the paper's "sacrificing
            // partial hash function selections by disabling Γ which
            // contains complex operations for accuracy" (§III-G): the same
            // candidate space, minus the accuracy of conflict checking.
            let mut blind: Vec<(HashId, u32)> = Vec::new();
            let mut costly: Option<(HashId, u32, crate::gamma::ConflictSet, f64)> = None;
            for id in 1..=n_hash as u8 {
                if phi.contains(&id) {
                    continue;
                }
                let p = provider.position(id, es_key, m) as u32;
                if p == u {
                    // Replacement still maps e_s to u: clearing u would be
                    // impossible, skip.
                    continue;
                }
                if bloom.get(p as usize) {
                    direct.push((id, p)); // class (a)
                } else if let Some(g) = gamma.as_ref() {
                    let cs = g.detect_conflicts(
                        p as usize,
                        &v,
                        k,
                        |i| neg_pos_of(&neg_positions, i),
                        |i| !neg_state[i as usize].is_collision,
                        |i| negatives[i as usize].1,
                    );
                    if cs.is_clear() {
                        direct.push((id, p)); // class (b)
                    } else if config.enable_class_c {
                        let gain = eck_cost - cs.total_cost;
                        if gain >= 0.0 && costly.as_ref().is_none_or(|&(_, _, _, g0)| gain > g0) {
                            costly = Some((id, p, cs, gain)); // class (c) best
                        }
                    }
                } else {
                    blind.push((id, p)); // Γ off: unchecked adjustment
                }
            }

            // Phase-II: keep the insertable plan with maximal cell overlap.
            // Side-effect-free candidates (class a / checked class b) are
            // preferred over blind ones.
            let pick_best =
                |pool: &[(HashId, u32)],
                 he: &HashExpressor,
                 rng: &mut Xoshiro256|
                 -> Option<(crate::hash_expressor::InsertPlan, HashId, u32)> {
                    let mut best: Option<(crate::hash_expressor::InsertPlan, HashId, u32)> = None;
                    for &(id, p) in pool {
                        let mut phi2: Vec<HashId> = phi.to_vec();
                        phi2[slot] = id;
                        if let Some(plan) = he.plan(es_key, &phi2, provider, rng) {
                            if best
                                .as_ref()
                                .is_none_or(|(b, _, _)| plan.shared_cells() > b.shared_cells())
                            {
                                best = Some((plan, id, p));
                            }
                            if !config.overlap_tiebreak {
                                break; // ablation: first insertable candidate wins
                            }
                        }
                    }
                    best
                };
            let mut best = pick_best(&direct, &he, &mut rng);
            if best.is_none() {
                best = pick_best(&blind, &he, &mut rng);
            }
            let mut new_conflicts: Vec<u32> = Vec::new();
            if best.is_none() {
                // Class (c) fallback.
                if let Some((id, p, cs, _)) = costly {
                    let mut phi2: Vec<HashId> = phi.to_vec();
                    phi2[slot] = id;
                    if let Some(plan) = he.plan(es_key, &phi2, provider, &mut rng) {
                        new_conflicts = cs.keys;
                        best = Some((plan, id, p));
                    }
                }
            }

            let Some((plan, hc, p_new)) = best else {
                continue 'units;
            };

            // ---- Commit: HashExpressor, Bloom bits, V, φ(e_s), Γ.
            he.commit(&plan);
            in_he[es_us] = true;
            stats.adjusted_positives += 1;

            bloom.clear(u as usize);
            v.reset_single(u as usize);
            if !bloom.get(p_new as usize) {
                bloom.set(p_new as usize);
            }
            v.insert(p_new as usize, es);
            pos_phis[es_us * k + slot] = hc;
            pos_positions[es_us * k + slot] = p_new;

            neg_state[eck_us].is_collision = false;
            stats.optimized += 1;
            if let Some(g) = gamma.as_mut() {
                g.insert(eck, positions);
            }
            for nk in new_conflicts {
                let nk_us = nk as usize;
                neg_state[nk_us].is_collision = true;
                if neg_state[nk_us].requeues < config.requeue_cap {
                    neg_state[nk_us].requeues += 1;
                    stats.requeued += 1;
                    queue.push_back(nk);
                } else {
                    stats.failed += 1;
                }
            }
            committed = true;
            break 'units;
        }

        if !committed {
            stats.failed += 1;
        }
    }

    TpjoOutput {
        bloom,
        he,
        h0,
        stats,
    }
}

/// Computes the Bloom positions of `key` under `ids`, using the provider's
/// batch path (a single base-hash evaluation for simulated families).
#[inline]
pub fn positions_batch<P: HashProvider>(
    provider: &P,
    key: &[u8],
    ids: &[HashId],
    m: usize,
    out: &mut Vec<u32>,
) {
    provider.positions_batch(key, ids, m, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use habf_hashing::HashFamily;

    fn config(m: usize, omega: usize, use_gamma: bool) -> TpjoConfig {
        TpjoConfig {
            k: 3,
            m,
            omega,
            cell_bits: 4,
            use_gamma,
            requeue_cap: 3,
            seed: 7,
            enable_class_c: true,
            overlap_tiebreak: true,
        }
    }

    fn keys(n: usize, tag: &str) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("{tag}:{i}").into_bytes()).collect()
    }

    fn query(out: &TpjoOutput, provider: &HashFamily, key: &[u8], k: usize) -> bool {
        let m = out.bloom.len();
        let round1 = out
            .h0
            .iter()
            .all(|&id| out.bloom.get(provider.position(id, key, m)));
        if round1 {
            return true;
        }
        match out.he.query(key, provider) {
            Some(phi) => {
                debug_assert_eq!(phi.len(), k);
                phi.iter()
                    .all(|&id| out.bloom.get(provider.position(id, key, m)))
            }
            None => false,
        }
    }

    #[test]
    fn zero_fnr_after_optimization() {
        let provider = HashFamily::with_size(7);
        let pos = keys(2_000, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(2_000, "neg")
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, 1.0 + i as f64 % 10.0))
            .collect();
        let cfg = config(2_000 * 8, 2_000, true);
        let out = run(&pos, &neg, &provider, &cfg);
        for k in &pos {
            assert!(query(&out, &provider, k, 3), "member dropped");
        }
    }

    #[test]
    fn optimization_reduces_false_positives() {
        let provider = HashFamily::with_size(7);
        let pos = keys(3_000, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(3_000, "neg").into_iter().map(|k| (k, 1.0)).collect();
        // b = 6 bits/key: plenty of collisions to fix.
        let cfg = config(3_000 * 6, 3_000 * 2 / 4, true);
        let out = run(&pos, &neg, &provider, &cfg);
        assert!(
            out.stats.initial_collision_keys > 0,
            "no collisions to optimize"
        );
        assert!(
            out.stats.optimized + out.stats.resolved_lazily > 0,
            "optimizer did nothing: {:?}",
            out.stats
        );
        let fp_after = neg
            .iter()
            .filter(|(k, _)| query(&out, &provider, k, 3))
            .count();
        assert!(
            fp_after < out.stats.initial_collision_keys,
            "FPs not reduced: {} -> {fp_after}",
            out.stats.initial_collision_keys
        );
    }

    #[test]
    fn gamma_disabled_still_sound_and_blind() {
        let provider = HashFamily::with_size(7);
        let pos = keys(3_000, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(3_000, "neg").into_iter().map(|k| (k, 1.0)).collect();
        let m = 3_000 * 6;
        let omega = 3_000 * 2 / 4;
        let with = run(&pos, &neg, &provider, &config(m, omega, true));
        let without = run(&pos, &neg, &provider, &config(m, omega, false));
        // Blind mode keeps zero FNR...
        for k in &pos {
            assert!(query(&without, &provider, k, 3));
        }
        // ...and still reduces false positives versus no optimization at
        // all, but pays an accuracy cost relative to conflict-checked
        // adjustments (it sets bits without knowing what they break).
        let fp = |out: &TpjoOutput| {
            neg.iter()
                .filter(|(k, _)| query(out, &provider, k, 3))
                .count()
        };
        let fp_with = fp(&with);
        let fp_without = fp(&without);
        assert!(without.stats.optimized > 0, "blind mode never optimized");
        assert!(
            fp_without < without.stats.initial_collision_keys,
            "blind mode did not reduce FPs: {fp_without} vs initial {}",
            without.stats.initial_collision_keys
        );
        assert!(
            fp_with <= fp_without + with.stats.initial_collision_keys / 10,
            "Γ-checked mode ({fp_with} FPs) should not be materially worse \
             than blind mode ({fp_without} FPs)"
        );
    }

    #[test]
    fn high_cost_keys_are_prioritized() {
        let provider = HashFamily::with_size(7);
        let pos = keys(4_000, "pos");
        // One extremely costly negative among uniform ones.
        let mut neg: Vec<(Vec<u8>, f64)> =
            keys(4_000, "neg").into_iter().map(|k| (k, 1.0)).collect();
        neg[1234].1 = 1e6;
        // Tight space: not everything can be optimized.
        let cfg = config(4_000 * 5, 4_000 / 4, true);
        let out = run(&pos, &neg, &provider, &cfg);
        // If the costly key was a collision key, it must have been among
        // the optimized ones (it sits at the head of the queue).
        let costly_fp = query(&out, &provider, &neg[1234].0, 3);
        let h0_hit = out.h0.iter().all(|&id| {
            out.bloom
                .get(provider.position(id, &neg[1234].0, out.bloom.len()))
        });
        // Either it was never a collision key, or it is now negative
        // through round 1 (unless it was simply unfixable — accept a
        // round-2 accidental hit as the only excuse).
        assert!(
            !costly_fp || h0_hit,
            "costliest key left as an avoidable false positive"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let provider = HashFamily::with_size(7);
        let pos = keys(1_000, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(1_000, "neg").into_iter().map(|k| (k, 2.0)).collect();
        let cfg = config(1_000 * 8, 500, true);
        let out = run(&pos, &neg, &provider, &cfg);
        assert_eq!(out.stats.positives, 1_000);
        assert_eq!(out.stats.negatives, 1_000);
        assert_eq!(out.stats.optimized, out.stats.adjusted_positives);
        assert_eq!(out.he.inserted(), out.stats.adjusted_positives);
        assert!(out.stats.optimized <= out.stats.initial_collision_keys + out.stats.requeued);
    }

    #[test]
    fn bloom_and_v_stay_synchronized() {
        // After a full optimization run, rebuild the expected bit array
        // from the final φ assignments and compare.
        let provider = HashFamily::with_size(7);
        let pos = keys(800, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(800, "neg").into_iter().map(|k| (k, 1.0)).collect();
        let cfg = config(800 * 7, 400, true);
        let out = run(&pos, &neg, &provider, &cfg);
        // Every positive key queries positive — in particular every bit of
        // every final φ chain is set, so no committed clear was wrong.
        for k in &pos {
            assert!(query(&out, &provider, k, 3));
        }
        // And the filter is not degenerate (some bits are 0).
        assert!(out.bloom.count_ones() < out.bloom.len());
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn provider_too_large_for_cells_panics() {
        let provider = HashFamily::with_size(9); // > 7 addressable with α=4
        let pos = keys(10, "p");
        let neg: Vec<(Vec<u8>, f64)> = vec![];
        let _ = run(&pos, &neg, &provider, &config(100, 10, true));
    }

    #[test]
    fn degenerate_k_equals_family_size_is_sound() {
        // k = |H|: H_c is empty, so no adjustment is ever possible — the
        // filter degrades to a plain Bloom array but must stay correct.
        let provider = HashFamily::with_size(3);
        let pos = keys(500, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(500, "neg").into_iter().map(|k| (k, 1.0)).collect();
        let out = run(&pos, &neg, &provider, &config(500 * 8, 100, true));
        assert_eq!(out.stats.optimized, 0, "optimized without candidates");
        for k in &pos {
            assert!(query(&out, &provider, k, 3));
        }
    }

    #[test]
    fn k_one_minimal_configuration() {
        let provider = HashFamily::with_size(3);
        let pos = keys(300, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(300, "neg").into_iter().map(|k| (k, 2.0)).collect();
        let cfg = TpjoConfig {
            k: 1,
            m: 300 * 8,
            omega: 200,
            cell_bits: 4,
            use_gamma: true,
            requeue_cap: 3,
            seed: 7,
            enable_class_c: true,
            overlap_tiebreak: true,
        };
        let out = run(&pos, &neg, &provider, &cfg);
        for k in &pos {
            assert!(query(&out, &provider, k, 1));
        }
        // With k = 1 a collision key shares its only bit with a positive
        // key, so successful adjustments are possible and meaningful.
        let fp = neg
            .iter()
            .filter(|(k, _)| query(&out, &provider, k, 1))
            .count();
        assert!(fp <= out.stats.initial_collision_keys);
    }

    #[test]
    fn requeue_cap_zero_terminates() {
        let provider = HashFamily::with_size(7);
        let pos = keys(2_000, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(2_000, "neg")
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, 1.0 + (i % 50) as f64))
            .collect();
        let mut cfg = config(2_000 * 6, 600, true);
        cfg.requeue_cap = 0;
        let out = run(&pos, &neg, &provider, &cfg);
        assert_eq!(out.stats.requeued, 0);
        for k in &pos {
            assert!(query(&out, &provider, k, 3));
        }
    }

    #[test]
    fn duplicate_positive_keys_are_tolerated() {
        // Duplicates inflate V counts (conservative) but must not break
        // correctness.
        let mut pos = keys(500, "pos");
        pos.extend(keys(500, "pos")); // every key twice
        let provider = HashFamily::with_size(7);
        let neg: Vec<(Vec<u8>, f64)> = keys(500, "neg").into_iter().map(|k| (k, 1.0)).collect();
        let out = run(&pos, &neg, &provider, &config(500 * 10, 300, true));
        for k in &pos {
            assert!(query(&out, &provider, k, 3));
        }
    }
}
