//! The runtime index `V` (paper §III-D, Fig 4).
//!
//! `V` mirrors the Bloom bit array with one unit per bit, tracking for each
//! bit **whether it is mapped by positive keys at most once** and, if so,
//! by *which* key. TPJO only ever adjusts a positive key away from a bit
//! that key maps *alone* — that is exactly the situation where the Bloom
//! bit can be reset to 0, which is what turns a collision key back into a
//! true negative.
//!
//! Case rules on insertion of key `e` into unit `u` (paper Fig 4):
//! 1. `⟨1, NULL⟩ → ⟨1, e⟩` — first mapping.
//! 2. `⟨1, e'⟩ → ⟨0, e'⟩` — second mapping degrades the single flag.
//! 3. `⟨0, e'⟩` — unchanged.
//!
//! The structure maintains the invariant `keyid ≠ NULL ⇔ the bit is mapped
//! by ≥ 1 positive key`, so `V` doubles as the ground truth for
//! `σ(i) = 1` during conflict detection (Algorithm 1 reads
//! `V[h(e_opk)].keyid ≠ NULL`).

use habf_util::BitVec;

/// Sentinel for "no key".
const NONE: u32 = u32::MAX;

/// The `V` index: `m` units of ⟨singleflag, keyid⟩.
#[derive(Clone, Debug)]
pub struct VIndex {
    singleflag: BitVec,
    keyid: Vec<u32>,
}

impl VIndex {
    /// Creates `m` units, all `⟨1, NULL⟩`.
    #[must_use]
    pub fn new(m: usize) -> Self {
        let mut singleflag = BitVec::new(m);
        for i in 0..m {
            singleflag.set(i);
        }
        Self {
            singleflag,
            keyid: vec![NONE; m],
        }
    }

    /// Number of units.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keyid.len()
    }

    /// `true` when there are no units.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keyid.is_empty()
    }

    /// Inserts positive key `key_idx` into unit `unit` (one per hash
    /// function application, so a key is inserted `k` times overall).
    #[inline]
    pub fn insert(&mut self, unit: usize, key_idx: u32) {
        debug_assert_ne!(key_idx, NONE, "key index collides with the sentinel");
        if self.singleflag.get(unit) {
            if self.keyid[unit] == NONE {
                // Case 1: first mapping.
                self.keyid[unit] = key_idx;
            } else {
                // Case 2: mapped twice now.
                self.singleflag.clear(unit);
            }
        }
        // Case 3: nothing to do.
    }

    /// `true` iff the unit is mapped exactly once (adjustable).
    ///
    /// Units are hash positions already reduced modulo `len()`, so the
    /// bounds-masked probe is exact and TPJO's conflict-detection loops
    /// carry no panic branch.
    #[must_use]
    #[inline]
    pub fn is_single(&self, unit: usize) -> bool {
        self.singleflag.get_probe(unit) && self.keyid[unit] != NONE
    }

    /// The single occupant of `unit`, if [`Self::is_single`].
    #[must_use]
    #[inline]
    pub fn single_key(&self, unit: usize) -> Option<u32> {
        if self.is_single(unit) {
            Some(self.keyid[unit])
        } else {
            None
        }
    }

    /// `true` iff the Bloom bit behind `unit` is set (mapped ≥ once) —
    /// the `keyid ≠ NULL` test of Algorithm 1.
    #[must_use]
    #[inline]
    pub fn bit_is_set(&self, unit: usize) -> bool {
        self.keyid[unit] != NONE
    }

    /// Resets `unit` to `⟨1, NULL⟩` after its single occupant was adjusted
    /// away (paper §III-D: "for updating V, we reset unit u").
    ///
    /// # Panics
    /// Panics (debug) if the unit is not single — resetting a multi-mapped
    /// unit would desynchronize `V` from the Bloom array.
    #[inline]
    pub fn reset_single(&mut self, unit: usize) {
        debug_assert!(self.is_single(unit), "resetting a non-single unit");
        self.singleflag.set(unit);
        self.keyid[unit] = NONE;
    }

    /// Number of single-mapped units (diagnostics; relates to `P_ξ` of
    /// Theorem 4.1).
    #[must_use]
    pub fn count_single(&self) -> usize {
        (0..self.len()).filter(|&u| self.is_single(u)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_units_are_empty() {
        let v = VIndex::new(16);
        for u in 0..16 {
            assert!(!v.is_single(u));
            assert!(!v.bit_is_set(u));
            assert_eq!(v.single_key(u), None);
        }
    }

    #[test]
    fn case_transitions() {
        let mut v = VIndex::new(8);
        // Case 1.
        v.insert(3, 7);
        assert!(v.is_single(3));
        assert_eq!(v.single_key(3), Some(7));
        assert!(v.bit_is_set(3));
        // Case 2: second mapping degrades, keeps keyid.
        v.insert(3, 9);
        assert!(!v.is_single(3));
        assert!(v.bit_is_set(3));
        assert_eq!(v.single_key(3), None);
        // Case 3: further mappings change nothing.
        v.insert(3, 11);
        assert!(!v.is_single(3));
        assert!(v.bit_is_set(3));
    }

    #[test]
    fn same_key_twice_still_degrades() {
        // A key whose two hash functions collide on one unit counts as two
        // mappings (conservative: the bit cannot be cleared by moving one
        // of them).
        let mut v = VIndex::new(4);
        v.insert(1, 5);
        v.insert(1, 5);
        assert!(!v.is_single(1));
    }

    #[test]
    fn reset_single_restores_empty() {
        let mut v = VIndex::new(4);
        v.insert(2, 1);
        v.reset_single(2);
        assert!(!v.bit_is_set(2));
        assert!(!v.is_single(2));
        // The unit is reusable.
        v.insert(2, 8);
        assert!(v.is_single(2));
        assert_eq!(v.single_key(2), Some(8));
    }

    #[test]
    fn count_single_matches_model() {
        let mut v = VIndex::new(100);
        // Brute-force model of per-unit insertion counts.
        let mut counts = vec![0usize; 100];
        let inserts = [
            (4usize, 1u32),
            (4, 2),
            (9, 3),
            (17, 3),
            (17, 4),
            (17, 5),
            (63, 9),
        ];
        for &(u, k) in &inserts {
            v.insert(u, k);
            counts[u] += 1;
        }
        let model = counts.iter().filter(|&&c| c == 1).count();
        assert_eq!(v.count_single(), model);
        for (u, &c) in counts.iter().enumerate() {
            assert_eq!(v.bit_is_set(u), c >= 1, "unit {u}");
            assert_eq!(v.is_single(u), c == 1, "unit {u}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-single")]
    fn reset_non_single_panics_in_debug() {
        let mut v = VIndex::new(4);
        v.insert(0, 1);
        v.insert(0, 2);
        v.reset_single(0);
    }
}
