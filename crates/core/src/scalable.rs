//! The tiered scalable HABF: growth without a stop-the-world rebuild.
//!
//! `ScalableHabf` follows the ScalableBloomFilter pattern (Almeida et
//! al.): a stack of HABF *generations*, each a complete [`Habf`] with its
//! own geometry. Tier `i` holds `base_capacity · 2^i` keys at a
//! per-key budget that **widens** by [`TIER_TIGHTEN_BPK`] bits each
//! generation — the extra bits tighten the newer tier's FP budget so the
//! stack's compound FPR stays a convergent series (each tier contributes
//! roughly half the previous one's error) instead of summing linearly.
//!
//! Inserts always land in the newest tier; when it reaches capacity the
//! stack pushes a fresh, larger tier built *empty* (a degenerate TPJO run
//! over no members) and keeps going. Queries probe newest-first — recent
//! keys are the likeliest probe targets — and OR across tiers, so zero
//! false negatives hold for every member of every generation.
//!
//! The **autoscale knob** is `max_tiers`: when the stack reaches it, new
//! keys overfill the top tier instead of failing the insert. That trades
//! the FP envelope (saturation climbs past 1.0, fill ratio rises) for
//! availability — the degradation is graceful and visible through
//! [`ScalableHabf::saturation`], which the adaptation loop watches to
//! schedule a [`crate::adapt::RebuildKind::Compact`] fold-back.
//!
//! The fold-back is the [`crate::Rebuildable`] impl: rebuilding replaces
//! the whole stack with **one** right-sized tier — geometry re-derived
//! from the live key count at the original bits-per-key rate, mined
//! hints preserved through the full TPJO build — which is exactly what
//! LSM compaction and `TenantStore::rebuild_now` need.

use crate::habf::{Habf, HabfConfig};
use crate::persist::{PersistError, Reader};
use habf_filters::Filter;
use habf_util::Backing;

/// Upper bound on persisted tier counts: a stack deeper than this cannot
/// be real (64 doublings overflow any key count), so the decoder rejects
/// corrupt headers before allocating.
pub(crate) const MAX_TIERS: usize = 64;

/// Extra bits per key granted to each successive tier. Halving a Bloom
/// FP target costs `ln 2 / (ln 2)^2 ≈ 1.44` bits per key; 1.5 keeps the
/// per-tier error a geometric series with ratio < 1 under HABF's
/// envelope too.
pub const TIER_TIGHTEN_BPK: f64 = 1.5;

/// Default autoscale cap: 16 doublings of the base capacity is a 65536×
/// growth headroom before the trade-off degrades.
pub(crate) const DEFAULT_MAX_TIERS: usize = 16;

/// Seed stride between tier builds (golden-ratio odd constant, the same
/// decorrelation idiom the sharded splitter uses): tiers must not share
/// `H0` selection noise or their FPs would correlate across generations.
const TIER_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// One generation of the stack.
#[derive(Clone)]
struct Tier {
    filter: Habf,
    /// Design capacity of this generation (keys it was sized for).
    capacity: usize,
    /// Keys actually inserted (tier 0 counts the built members).
    inserted: usize,
}

/// A stack of HABF generations with geometrically growing capacity and
/// tightening per-tier FP budgets. See the module docs for the design.
#[derive(Clone)]
pub struct ScalableHabf {
    tiers: Vec<Tier>,
    seed: u64,
    delta: f64,
    k: usize,
    cell_bits: u32,
    base_capacity: usize,
    base_total_bits: usize,
    max_tiers: usize,
}

impl ScalableHabf {
    /// Builds the stack: one full-TPJO tier over the members and costed
    /// negatives, sized by `config` (whose `total_bits` is the base
    /// budget the growth series scales from).
    ///
    /// # Panics
    /// Panics on a degenerate configuration (see [`HabfConfig::validate`]).
    #[must_use]
    pub fn build(
        positives: &[impl AsRef<[u8]>],
        negatives: &[(impl AsRef<[u8]>, f64)],
        config: &HabfConfig,
    ) -> Self {
        let filter = Habf::build(positives, negatives, config);
        let capacity = positives.len().max(16);
        Self {
            tiers: vec![Tier {
                filter,
                capacity,
                inserted: positives.len(),
            }],
            seed: config.seed,
            delta: config.delta,
            k: config.k,
            cell_bits: config.cell_bits,
            base_capacity: capacity,
            base_total_bits: config.total_bits.max(256),
            max_tiers: DEFAULT_MAX_TIERS,
        }
    }

    /// Sets the autoscale cap: the stack stops adding tiers at `cap` and
    /// overfills the newest one instead (saturation climbs past 1.0).
    #[must_use]
    pub fn with_max_tiers(mut self, cap: usize) -> Self {
        self.max_tiers = cap.clamp(1, MAX_TIERS);
        self
    }

    /// Base bits-per-key rate the growth series scales from (also the
    /// rate a fold-back re-derives its single-tier geometry at).
    fn base_bits_per_key(&self) -> f64 {
        self.base_total_bits as f64 / self.base_capacity as f64
    }

    /// The config a fresh tier at `index` builds with: doubled capacity,
    /// widened per-key budget (tightened FP target), strided seed.
    fn tier_config(&self, index: usize) -> HabfConfig {
        let capacity = self.base_capacity << index.min(63);
        let bpk = self.base_bits_per_key() + TIER_TIGHTEN_BPK * index as f64;
        let mut cfg = HabfConfig::with_total_bits(((capacity as f64 * bpk) as usize).max(256));
        cfg.delta = self.delta;
        cfg.k = self.k;
        cfg.cell_bits = self.cell_bits;
        cfg.seed = self
            .seed
            .wrapping_add(TIER_SEED_STRIDE.wrapping_mul(index as u64));
        cfg
    }

    /// Adds a key. The newest tier absorbs it; a full top tier pushes the
    /// next generation unless the autoscale cap says overfill instead.
    /// Zero false negatives hold for the key from the moment this
    /// returns (it is inserted with the new tier's `H0`).
    pub fn insert(&mut self, key: &[u8]) {
        let grow = {
            let top = self.tiers.last().expect("stack is never empty");
            top.inserted >= top.capacity && self.tiers.len() < self.max_tiers
        };
        if grow {
            let index = self.tiers.len();
            let cfg = self.tier_config(index);
            let none: [&[u8]; 0] = [];
            let no_costs: [(&[u8], f64); 0] = [];
            self.tiers.push(Tier {
                filter: Habf::build(&none, &no_costs, &cfg),
                capacity: self.base_capacity << index.min(63),
                inserted: 0,
            });
        }
        let top = self.tiers.last_mut().expect("stack is never empty");
        top.filter.insert(key);
        top.inserted += 1;
    }

    /// Newest-tier fill over its design capacity — the growth pressure
    /// gauge. ≤ 1.0 while tiers can still be added; climbs past 1.0 once
    /// the autoscale cap forces the top tier to overfill.
    #[must_use]
    pub fn saturation(&self) -> f64 {
        let top = self.tiers.last().expect("stack is never empty");
        top.inserted as f64 / top.capacity.max(1) as f64
    }

    /// Live generation count (probe rounds per negative query).
    #[must_use]
    pub fn generations(&self) -> usize {
        self.tiers.len()
    }

    /// Keys held across all generations (tier 0 counts built members).
    #[must_use]
    pub fn total_inserted(&self) -> usize {
        self.tiers.iter().map(|t| t.inserted).sum()
    }

    /// The autoscale cap (see [`ScalableHabf::with_max_tiers`]).
    #[must_use]
    pub fn max_tiers(&self) -> usize {
        self.max_tiers
    }

    /// Design capacity of tier `i`.
    #[must_use]
    pub fn tier_capacity(&self, i: usize) -> usize {
        self.tiers[i].capacity
    }

    /// Keys inserted into tier `i`.
    #[must_use]
    pub fn tier_inserted(&self, i: usize) -> usize {
        self.tiers[i].inserted
    }

    /// Tier `i`'s filter, oldest first (`i = 0` is the built generation).
    #[must_use]
    pub fn tier(&self, i: usize) -> &Habf {
        &self.tiers[i].filter
    }

    /// The build seed tier 0 used (tier `i` strides from it).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Where the stack's payload words live: the worst backing across
    /// tiers (one owned tier makes the stack partially owned).
    #[must_use]
    pub fn backing(&self) -> Backing {
        self.tiers
            .iter()
            .map(|t| t.filter.backing())
            .fold(Backing::Owned, Backing::combine)
    }

    /// Fold-back: replaces the whole stack with **one** tier whose
    /// geometry is re-derived from the live key count at the base
    /// bits-per-key rate, built by full TPJO over `positives` (the live
    /// member set) and `negatives` (preserved mined hints).
    pub fn fold_rebuild(
        &mut self,
        positives: &[impl AsRef<[u8]>],
        negatives: &[(impl AsRef<[u8]>, f64)],
        seed: u64,
    ) {
        let capacity = positives.len().max(16);
        let total_bits = ((capacity as f64 * self.base_bits_per_key()) as usize).max(256);
        let mut cfg = HabfConfig::with_total_bits(total_bits);
        cfg.delta = self.delta;
        cfg.k = self.k;
        cfg.cell_bits = self.cell_bits;
        cfg.seed = seed;
        let filter = Habf::build(positives, negatives, &cfg);
        self.seed = seed;
        self.base_capacity = capacity;
        self.base_total_bits = total_bits;
        self.tiers = vec![Tier {
            filter,
            capacity,
            inserted: positives.len(),
        }];
    }

    /// Serializes the stack to its v1 payload (version byte, growth
    /// parameters, then length-framed per-tier [`Habf::to_bytes`] blobs).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let blobs: Vec<Vec<u8>> = self.tiers.iter().map(|t| t.filter.to_bytes()).collect();
        let payload: usize = blobs.iter().map(|b| 24 + b.len()).sum();
        let mut out = Vec::with_capacity(44 + payload);
        out.push(1); // payload version
        out.push(self.k as u8);
        out.push(self.cell_bits as u8);
        out.extend_from_slice(&self.delta.to_bits().to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.base_capacity as u64).to_le_bytes());
        out.extend_from_slice(&(self.base_total_bits as u64).to_le_bytes());
        out.extend_from_slice(&(self.max_tiers as u32).to_le_bytes());
        out.extend_from_slice(&(self.tiers.len() as u32).to_le_bytes());
        for (tier, blob) in self.tiers.iter().zip(&blobs) {
            out.extend_from_slice(&(tier.capacity as u64).to_le_bytes());
            out.extend_from_slice(&(tier.inserted as u64).to_le_bytes());
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(blob);
        }
        out
    }

    /// Loads a stack persisted by [`ScalableHabf::to_bytes`].
    ///
    /// # Errors
    /// Returns a typed [`PersistError`] on any malformed input; never
    /// panics on untrusted bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader::new(buf);
        let version = r.u8()?;
        if version != 1 {
            return Err(PersistError::BadVersion(version));
        }
        let (growth, tier_count) = decode_growth_params(&mut r)?;
        let mut tiers = Vec::with_capacity(tier_count);
        for _ in 0..tier_count {
            let (capacity, inserted) = decode_tier_counters(&mut r)?;
            let len = usize::try_from(r.u64()?).map_err(|_| PersistError::Truncated)?;
            let filter = Habf::from_bytes(r.bytes(len)?)?;
            tiers.push(Tier {
                filter,
                capacity,
                inserted,
            });
        }
        r.finish()?;
        Ok(growth.assemble(tiers))
    }

    /// Rebuilds a stack from decoded parts (the v2 loader's hook).
    pub(crate) fn from_parts(growth: GrowthParams, tiers: Vec<(Habf, usize, usize)>) -> Self {
        growth.assemble(
            tiers
                .into_iter()
                .map(|(filter, capacity, inserted)| Tier {
                    filter,
                    capacity,
                    inserted,
                })
                .collect(),
        )
    }
}

impl Filter for ScalableHabf {
    /// ORs the two-round query across generations, newest first (recent
    /// keys are the likeliest probes). Zero FN: every member was
    /// inserted into exactly one tier and that tier answers true.
    fn contains(&self, key: &[u8]) -> bool {
        self.tiers.iter().rev().any(|t| t.filter.contains(key))
    }

    fn space_bits(&self) -> usize {
        self.tiers.iter().map(|t| t.filter.space_bits()).sum()
    }

    fn name(&self) -> &'static str {
        "Scalable-HABF"
    }
}

/// The growth parameters shared by the v1 and v2 codecs (everything
/// above the per-tier blocks).
pub(crate) struct GrowthParams {
    pub k: usize,
    pub cell_bits: u32,
    pub delta: f64,
    pub seed: u64,
    pub base_capacity: usize,
    pub base_total_bits: usize,
    pub max_tiers: usize,
}

impl GrowthParams {
    pub(crate) fn of(f: &ScalableHabf) -> Self {
        Self {
            k: f.k,
            cell_bits: f.cell_bits,
            delta: f.delta,
            seed: f.seed,
            base_capacity: f.base_capacity,
            base_total_bits: f.base_total_bits,
            max_tiers: f.max_tiers,
        }
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>, tier_count: usize) {
        out.push(self.k as u8);
        out.push(self.cell_bits as u8);
        out.extend_from_slice(&self.delta.to_bits().to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.base_capacity as u64).to_le_bytes());
        out.extend_from_slice(&(self.base_total_bits as u64).to_le_bytes());
        out.extend_from_slice(&(self.max_tiers as u32).to_le_bytes());
        out.extend_from_slice(&(tier_count as u32).to_le_bytes());
    }

    fn assemble(self, tiers: Vec<Tier>) -> ScalableHabf {
        ScalableHabf {
            tiers,
            seed: self.seed,
            delta: self.delta,
            k: self.k,
            cell_bits: self.cell_bits,
            base_capacity: self.base_capacity,
            base_total_bits: self.base_total_bits,
            max_tiers: self.max_tiers,
        }
    }
}

/// Decodes and validates the growth-parameter block (shared by the v1
/// payload and the v2 metadata); returns the params and the tier count.
pub(crate) fn decode_growth_params(
    r: &mut Reader<'_>,
) -> Result<(GrowthParams, usize), PersistError> {
    let k = usize::from(r.u8()?);
    let cell_bits = u32::from(r.u8()?);
    if k == 0 || k > crate::MAX_K {
        return Err(PersistError::Corrupt("k out of range"));
    }
    if !(2..=16).contains(&cell_bits) {
        return Err(PersistError::Corrupt("cell width out of range"));
    }
    let delta = f64::from_bits(r.u64()?);
    if !delta.is_finite() || delta <= 0.0 {
        return Err(PersistError::Corrupt("delta out of range"));
    }
    let seed = r.u64()?;
    let base_capacity = usize::try_from(r.u64()?).map_err(|_| PersistError::Truncated)?;
    if base_capacity == 0 {
        return Err(PersistError::Corrupt("zero base capacity"));
    }
    let base_total_bits = usize::try_from(r.u64()?).map_err(|_| PersistError::Truncated)?;
    if base_total_bits == 0 {
        return Err(PersistError::Corrupt("zero base budget"));
    }
    let max_tiers = u32::from_le_bytes(r.bytes(4)?.try_into().expect("4 bytes")) as usize;
    if max_tiers == 0 || max_tiers > MAX_TIERS {
        return Err(PersistError::Corrupt("tier cap out of range"));
    }
    let tier_count = u32::from_le_bytes(r.bytes(4)?.try_into().expect("4 bytes")) as usize;
    if tier_count == 0 || tier_count > MAX_TIERS {
        return Err(PersistError::Corrupt("tier count out of range"));
    }
    Ok((
        GrowthParams {
            k,
            cell_bits,
            delta,
            seed,
            base_capacity,
            base_total_bits,
            max_tiers,
        },
        tier_count,
    ))
}

/// Decodes one tier's capacity/inserted counters (shared v1/v2 block).
pub(crate) fn decode_tier_counters(r: &mut Reader<'_>) -> Result<(usize, usize), PersistError> {
    let capacity = usize::try_from(r.u64()?).map_err(|_| PersistError::Truncated)?;
    if capacity == 0 {
        return Err(PersistError::Corrupt("zero tier capacity"));
    }
    let inserted = usize::try_from(r.u64()?).map_err(|_| PersistError::Truncated)?;
    Ok((capacity, inserted))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(range: std::ops::Range<usize>) -> Vec<Vec<u8>> {
        range.map(|i| format!("key:{i}").into_bytes()).collect()
    }

    fn sample(n: usize) -> ScalableHabf {
        let members = keys(0..n);
        let negatives: Vec<(Vec<u8>, f64)> = (0..n)
            .map(|i| (format!("neg:{i}").into_bytes(), 1.0 + (i % 5) as f64))
            .collect();
        ScalableHabf::build(&members, &negatives, &HabfConfig::with_total_bits(12 * n))
    }

    #[test]
    fn grows_through_generations_with_zero_fn() {
        let mut f = sample(200);
        assert_eq!(f.generations(), 1);
        let extra = keys(200..2000);
        for k in &extra {
            f.insert(k);
        }
        assert!(f.generations() > 1, "growth must add tiers");
        assert!(f.generations() <= f.max_tiers());
        for k in keys(0..2000) {
            assert!(f.contains(&k), "member dropped across generations");
        }
        // 1800 inserts past a 200-key design capacity is 10× growth.
        assert!(f.total_inserted() >= 2000);
    }

    #[test]
    fn tier_capacities_double_and_budgets_widen() {
        let mut f = sample(100);
        for k in keys(100..1000) {
            f.insert(&k);
        }
        let n = f.generations();
        assert!(n >= 3);
        for i in 1..n {
            assert_eq!(f.tier_capacity(i), f.tier_capacity(i - 1) * 2);
            // Wider per-key budget: space per capacity unit grows.
            let bpk_prev = f.tier(i - 1).space_bits() as f64 / f.tier_capacity(i - 1) as f64;
            let bpk = f.tier(i).space_bits() as f64 / f.tier_capacity(i) as f64;
            assert!(
                bpk > bpk_prev * 0.99,
                "tier {i} budget must not tighten in space: {bpk} vs {bpk_prev}"
            );
        }
    }

    #[test]
    fn autoscale_cap_overfills_instead_of_failing() {
        let mut f = sample(50).with_max_tiers(2);
        for k in keys(50..1000) {
            f.insert(&k);
        }
        assert_eq!(f.generations(), 2, "cap must hold");
        assert!(f.saturation() > 1.0, "top tier must overfill past the cap");
        for k in keys(0..1000) {
            assert!(f.contains(&k), "overfilled tier dropped a member");
        }
    }

    #[test]
    fn saturation_stays_bounded_while_tiers_absorb_growth() {
        let mut f = sample(100);
        for k in keys(100..3000) {
            f.insert(&k);
            assert!(
                f.saturation() <= 1.0 + 1e-9,
                "saturation must stay ≤ 1.0 below the tier cap"
            );
        }
    }

    #[test]
    fn fold_rebuild_collapses_to_one_right_sized_tier() {
        let mut f = sample(100);
        for k in keys(100..900) {
            f.insert(&k);
        }
        assert!(f.generations() > 1);
        let bpk0 = 12.0;
        let members = keys(0..900);
        let hints: Vec<(Vec<u8>, f64)> = (0..50)
            .map(|i| (format!("hot:{i}").into_bytes(), 5.0))
            .collect();
        f.fold_rebuild(&members, &hints, 7);
        assert_eq!(f.generations(), 1);
        assert!((f.saturation() - 1.0).abs() < 1e-9);
        for k in &members {
            assert!(f.contains(k), "fold dropped a member");
        }
        // Geometry re-derived from the live key count at the base rate.
        let bits = f.tier(0).space_bits() as f64;
        assert!(
            (bits / 900.0 - bpk0).abs() < 2.0,
            "folded geometry off the base rate: {} bits/key",
            bits / 900.0
        );
    }

    #[test]
    fn v1_round_trip_preserves_the_stack() {
        let mut f = sample(80);
        for k in keys(80..700) {
            f.insert(&k);
        }
        let bytes = f.to_bytes();
        let loaded = ScalableHabf::from_bytes(&bytes).expect("load");
        assert_eq!(loaded.generations(), f.generations());
        assert_eq!(loaded.total_inserted(), f.total_inserted());
        assert_eq!(loaded.max_tiers(), f.max_tiers());
        for k in keys(0..700) {
            assert_eq!(loaded.contains(&k), f.contains(&k));
        }
        assert_eq!(loaded.to_bytes(), bytes, "re-encode must be byte-stable");
    }

    #[test]
    fn truncated_and_corrupt_images_are_typed_errors() {
        let f = sample(60);
        let bytes = f.to_bytes();
        for cut in 0..bytes.len().min(64) {
            assert!(
                ScalableHabf::from_bytes(&bytes[..cut]).is_err(),
                "prefix {cut} must not load"
            );
        }
        // Tier-count corruption: version(1) + k(1) + cell_bits(1) +
        // delta(8) + seed(8) + base_capacity(8) + base_total_bits(8) +
        // max_tiers(4) puts the tier count at offset 39.
        let mut evil = bytes.clone();
        evil[39..43].copy_from_slice(&u32::MAX.to_le_bytes());
        match ScalableHabf::from_bytes(&evil).err() {
            Some(PersistError::Corrupt(msg)) => assert_eq!(msg, "tier count out of range"),
            other => panic!("want Corrupt, got {other:?}"),
        }
    }
}
