//! FP-feedback adaptation: the cost-decayed false-positive log, the hint
//! mining pass, and the rebuild trigger policy.
//!
//! HABF's construction consumes a *static* costed negative set, but the
//! negatives that actually matter are the ones observed in production: the
//! queries that slip past a filter and burn a block read. This module
//! closes that loop:
//!
//! 1. **[`FpLog`]** — a ring-buffered log of false-positive events. Each
//!    event carries the key and the (level-weighted, in the LSM case) cost
//!    of the wasted read. Older events decay geometrically so the log
//!    tracks the *current* costly-miss distribution, not history: an event
//!    `a` records ago contributes `cost · decay^a` to every aggregate.
//! 2. **Mining** — [`FpLog::mine_hints`] folds the log into a
//!    deduplicated, cost-ranked negative hint list, exactly the shape
//!    [`crate::tpjo`] consumes: key-unique, finite, descending by decayed
//!    cost.
//! 3. **[`AdaptPolicy`]** — decides when the observed waste justifies
//!    paying a TPJO rebuild: either the decayed wasted weighted cost
//!    crosses a threshold, or the windowed FP rate breaches an envelope
//!    (e.g. a slack factor over [`crate::Habf::fpr_envelope`]).
//!
//! The serving layers wire this together: the LSM store records every
//! wasted read at query time, checks the policy, and on a trigger re-runs
//! TPJO over each run with the mined hints ([`crate::sharded::ShardedHabf`]
//! rebuilds per shard through the copy-on-write `Arc::make_mut` path, so
//! concurrent readers keep their snapshots).

use std::collections::{HashMap, VecDeque};

/// Ring-buffered, cost-decayed log of observed false positives.
///
/// ```
/// use habf_core::{AdaptPolicy, FpLog};
///
/// let mut log = FpLog::new(1024, 0.99);
/// let policy = AdaptPolicy::cost_threshold(50.0);
/// for _ in 0..20 {
///     log.note_lookup();
///     log.record(b"hot-miss", 3.0); // a wasted read costing 3 units
/// }
/// assert!(policy.should_rebuild(&log));
/// let hints = log.mine_hints(16);
/// assert_eq!(hints.len(), 1); // deduplicated by key
/// assert_eq!(hints[0].0, b"hot-miss");
/// ```
#[derive(Clone, Debug)]
pub struct FpLog {
    /// `(key, raw cost)` events, oldest at the front.
    ring: VecDeque<(Vec<u8>, f64)>,
    capacity: usize,
    /// Geometric decay per subsequent event, in `(0, 1]`.
    decay: f64,
    /// Incrementally maintained `Σ cost·decay^age` over the ring.
    decayed_cost: f64,
    /// Lookups observed since the last [`FpLog::reset_window`].
    window_lookups: u64,
    /// FP events recorded since the last [`FpLog::reset_window`].
    window_fps: u64,
    /// Lifetime FP events (never reset; diagnostics).
    total_fps: u64,
    /// Events dropped for a non-finite or non-positive cost.
    rejected: u64,
}

impl FpLog {
    /// Creates a log holding at most `capacity` events with geometric
    /// per-event `decay`.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `decay` is not in `(0, 1]`.
    #[must_use]
    pub fn new(capacity: usize, decay: f64) -> Self {
        assert!(capacity > 0, "FpLog capacity must be > 0");
        assert!(
            decay.is_finite() && decay > 0.0 && decay <= 1.0,
            "decay must be in (0, 1], got {decay}"
        );
        Self {
            ring: VecDeque::with_capacity(capacity.min(65_536)),
            capacity,
            decay,
            decayed_cost: 0.0,
            window_lookups: 0,
            window_fps: 0,
            total_fps: 0,
            rejected: 0,
        }
    }

    /// Notes one lookup (the FP-rate denominator). Call once per query
    /// that consults the filter(s), hit or miss.
    pub fn note_lookup(&mut self) {
        self.window_lookups += 1;
    }

    /// Notes `n` lookups at once — the batch-query entry point, where
    /// incrementing per key inside a lock would be pure overhead.
    pub fn note_lookups(&mut self, n: u64) {
        self.window_lookups += n;
    }

    /// Records one false positive: `key` passed a filter but the read
    /// found nothing, wasting `cost` units (level-weighted in the LSM).
    ///
    /// Events with a non-finite or non-positive cost are counted in
    /// [`FpLog::rejected`] and otherwise ignored — feedback is untrusted
    /// input and must never poison the mined hints.
    pub fn record(&mut self, key: &[u8], cost: f64) {
        if !cost.is_finite() || cost <= 0.0 {
            self.rejected += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            if let Some((_, evicted)) = self.ring.pop_front() {
                // The evicted event is `capacity - 1` records old *before*
                // this push ages everything by one more step.
                self.decayed_cost -= evicted * self.decay.powf((self.capacity - 1) as f64);
            }
        }
        // Aging: every resident event moves one step further into the past.
        self.decayed_cost = self.decayed_cost * self.decay + cost;
        if self.decayed_cost < 0.0 {
            // Float drift guard; the true sum is non-negative by construction.
            self.decayed_cost = 0.0;
        }
        self.ring.push_back((key.to_vec(), cost));
        self.window_fps += 1;
        self.total_fps += 1;
    }

    /// The decayed wasted weighted cost currently in the window:
    /// `Σ cost_i · decay^age_i` over the ring, newest event at age 0.
    #[must_use]
    pub fn decayed_wasted_cost(&self) -> f64 {
        self.decayed_cost
    }

    /// FP events since the last window reset.
    #[must_use]
    pub fn window_fp_events(&self) -> u64 {
        self.window_fps
    }

    /// Lookups noted since the last window reset.
    #[must_use]
    pub fn window_lookups(&self) -> u64 {
        self.window_lookups
    }

    /// Observed FP rate in the current window: recorded FP events over
    /// noted lookups (0 when no lookups were noted).
    #[must_use]
    pub fn window_fp_rate(&self) -> f64 {
        if self.window_lookups == 0 {
            0.0
        } else {
            self.window_fps as f64 / self.window_lookups as f64
        }
    }

    /// Lifetime FP events (not reset by [`FpLog::reset_window`]).
    #[must_use]
    pub fn total_fp_events(&self) -> u64 {
        self.total_fps
    }

    /// Events dropped for non-finite or non-positive costs.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Events currently resident in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no events are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Mines the log into a negative hint list: per-key decayed costs are
    /// summed, and the result is key-unique, finite, sorted by descending
    /// cost (ties broken by key for determinism), at most `max` long.
    #[must_use]
    pub fn mine_hints(&self, max: usize) -> Vec<(Vec<u8>, f64)> {
        if max == 0 || self.ring.is_empty() {
            return Vec::new();
        }
        let newest = self.ring.len() - 1;
        let mut by_key: HashMap<&[u8], f64> = HashMap::with_capacity(self.ring.len());
        for (age_from_oldest, (key, cost)) in self.ring.iter().enumerate() {
            let age = (newest - age_from_oldest) as i32;
            *by_key.entry(key.as_slice()).or_insert(0.0) += cost * self.decay.powi(age);
        }
        let mut hints: Vec<(Vec<u8>, f64)> =
            by_key.into_iter().map(|(k, c)| (k.to_vec(), c)).collect();
        hints.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        hints.truncate(max);
        hints
    }

    /// Clears the ring and the window counters — call after acting on a
    /// trigger, so the same events cannot immediately re-fire it.
    /// Lifetime counters ([`FpLog::total_fp_events`]) are preserved.
    pub fn reset_window(&mut self) {
        self.ring.clear();
        self.decayed_cost = 0.0;
        self.window_lookups = 0;
        self.window_fps = 0;
    }
}

/// What kind of rebuild an adaptation trigger asks for. Until elastic
/// filters existed there was only one answer — re-run TPJO at the built
/// geometry — but a filter that grows past its design capacity needs the
/// loop to distinguish *why* it is rebuilding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildKind {
    /// Re-run the construction at the **existing** geometry against fresh
    /// mined hints (the classic adaptation rebuild; observed FPs stay
    /// valid evidence because no bit positions move).
    Rehash,
    /// Rebuild at a geometry **re-derived from the live key count**: the
    /// filter outgrew its design capacity and needs more space, not
    /// better hash choices.
    Resize,
    /// Fold a multi-generation elastic stack back into one right-sized
    /// single-tier filter (geometry re-derived from the live key count,
    /// mined hints preserved) — the LSM-compaction / tenant-rebuild path.
    Compact,
}

impl RebuildKind {
    /// The stable lowercase label stats JSON and logs use.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RebuildKind::Rehash => "rehash",
            RebuildKind::Resize => "resize",
            RebuildKind::Compact => "compact",
        }
    }
}

impl core::fmt::Display for RebuildKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// When to pay for a rebuild: aggregate decayed waste crosses a
/// threshold, the windowed FP rate breaches an envelope, or — for
/// growable filters — saturation crosses its own trigger. The FP checks
/// are gated on a minimum event count so a single unlucky probe cannot
/// trigger a rebuild.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptPolicy {
    /// Trigger when [`FpLog::decayed_wasted_cost`] reaches this.
    /// `f64::INFINITY` disables the cost trigger.
    pub wasted_cost_threshold: f64,
    /// Trigger when [`FpLog::window_fp_rate`] reaches this (an FPR
    /// envelope, e.g. `Habf::fpr_envelope() · slack`). Note the observed
    /// rate can exceed 1.0 — one lookup may waste reads in several runs,
    /// and externally reported misses carry no lookup — so the disable
    /// sentinel is `f64::INFINITY`, not merely "above 1.0".
    pub fp_rate_envelope: f64,
    /// Minimum FP events in the window before either FP trigger may fire.
    pub min_fp_events: u64,
    /// Trigger a [`RebuildKind::Resize`] / [`RebuildKind::Compact`] when
    /// the filter's saturation (keys held over design capacity) reaches
    /// this. `f64::INFINITY` disables the saturation trigger — the
    /// default, so pre-elastic policies behave exactly as before.
    pub saturation_threshold: f64,
}

impl AdaptPolicy {
    /// Triggers on decayed wasted cost alone.
    #[must_use]
    pub fn cost_threshold(threshold: f64) -> Self {
        Self {
            wasted_cost_threshold: threshold,
            // The observed rate can exceed 1.0 (one lookup can waste a
            // read in several runs, and externally reported misses don't
            // note lookups), so only infinity truly disables it.
            fp_rate_envelope: f64::INFINITY,
            min_fp_events: 8,
            saturation_threshold: f64::INFINITY,
        }
    }

    /// Triggers on a windowed FP-rate envelope breach alone; `envelope`
    /// is typically a theoretical FPR times a slack factor.
    #[must_use]
    pub fn fp_rate(envelope: f64) -> Self {
        Self {
            wasted_cost_threshold: f64::INFINITY,
            fp_rate_envelope: envelope,
            min_fp_events: 8,
            saturation_threshold: f64::INFINITY,
        }
    }

    /// Also trigger once saturation (live keys over design capacity)
    /// reaches `threshold` — e.g. `1.25` resizes at 25% overfill.
    #[must_use]
    pub fn with_saturation(mut self, threshold: f64) -> Self {
        self.saturation_threshold = threshold;
        self
    }

    /// `true` when the log's current window justifies a rebuild.
    #[must_use]
    pub fn should_rebuild(&self, log: &FpLog) -> bool {
        log.window_fp_events() >= self.min_fp_events
            && (log.decayed_wasted_cost() >= self.wasted_cost_threshold
                || log.window_fp_rate() >= self.fp_rate_envelope)
    }

    /// Full decision: given the FP log plus the filter's current
    /// `saturation` and `generations` (from [`crate::filter_api::DynFilter`]),
    /// pick the rebuild that fixes the dominant problem, or `None`.
    ///
    /// A multi-generation stack always folds ([`RebuildKind::Compact`]) —
    /// whatever triggered, the stack is the thing to repair. A saturated
    /// single filter resizes; an FP-triggered, unsaturated one rehashes
    /// at its existing geometry.
    #[must_use]
    pub fn decide(&self, log: &FpLog, saturation: f64, generations: usize) -> Option<RebuildKind> {
        let saturated = saturation >= self.saturation_threshold;
        let fp_triggered = self.should_rebuild(log);
        if !saturated && !fp_triggered {
            return None;
        }
        Some(if generations > 1 {
            RebuildKind::Compact
        } else if saturated {
            RebuildKind::Resize
        } else {
            RebuildKind::Rehash
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_mine_dedups_and_ranks() {
        let mut log = FpLog::new(64, 1.0); // no decay: pure sums
        log.record(b"a", 1.0);
        log.record(b"b", 5.0);
        log.record(b"a", 2.5);
        log.record(b"c", 0.5);
        let hints = log.mine_hints(10);
        assert_eq!(hints.len(), 3);
        assert_eq!(hints[0], (b"b".to_vec(), 5.0));
        assert_eq!(hints[1].0, b"a");
        assert!((hints[1].1 - 3.5).abs() < 1e-12);
        assert_eq!(hints[2].0, b"c");
        // Descending and key-unique.
        assert!(hints.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn mine_caps_at_max() {
        let mut log = FpLog::new(64, 1.0);
        for i in 0..20 {
            log.record(format!("k{i}").as_bytes(), 1.0 + i as f64);
        }
        assert_eq!(log.mine_hints(5).len(), 5);
        assert!(log.mine_hints(0).is_empty());
        // The cap keeps the costliest.
        assert_eq!(log.mine_hints(1)[0].0, b"k19");
    }

    #[test]
    fn decay_prefers_recent_events() {
        let mut log = FpLog::new(64, 0.5);
        // "old" gets a big cost early; "new" smaller costs late. With
        // decay 0.5 over 10 intervening events, old's contribution is
        // 100 · 0.5^12 ≈ 0.024, far below new's ≈ 1.5.
        log.record(b"old", 100.0);
        for _ in 0..10 {
            log.record(b"filler", 0.001);
        }
        log.record(b"new", 1.0);
        log.record(b"new", 1.0);
        let hints = log.mine_hints(2);
        assert_eq!(hints[0].0, b"new", "decay must favor recent events");
    }

    #[test]
    fn ring_eviction_keeps_decayed_cost_consistent() {
        let mut log = FpLog::new(8, 0.9);
        for i in 0..100 {
            log.record(format!("k{i}").as_bytes(), 1.0 + (i % 5) as f64);
        }
        assert_eq!(log.len(), 8);
        // Recompute the ground truth directly from the ring via mining
        // with no cap: decayed_wasted_cost must equal the summed hints.
        let direct: f64 = log.mine_hints(usize::MAX).iter().map(|(_, c)| c).sum();
        assert!(
            (log.decayed_wasted_cost() - direct).abs() < 1e-9,
            "incremental {} vs direct {}",
            log.decayed_wasted_cost(),
            direct
        );
    }

    #[test]
    fn nonfinite_and_nonpositive_costs_are_rejected_not_stored() {
        let mut log = FpLog::new(8, 1.0);
        log.record(b"bad", f64::NAN);
        log.record(b"bad", f64::INFINITY);
        log.record(b"bad", -1.0);
        log.record(b"bad", 0.0);
        assert!(log.is_empty());
        assert_eq!(log.rejected(), 4);
        assert_eq!(log.decayed_wasted_cost(), 0.0);
        log.record(b"good", 2.0);
        let hints = log.mine_hints(10);
        assert_eq!(hints.len(), 1);
        assert!(hints.iter().all(|(_, c)| c.is_finite() && *c > 0.0));
    }

    #[test]
    fn cost_threshold_policy_triggers_and_resets() {
        let mut log = FpLog::new(1024, 1.0);
        let policy = AdaptPolicy::cost_threshold(10.0);
        for _ in 0..7 {
            log.record(b"x", 2.0);
        }
        // Cost is 14 ≥ 10, but only 7 events < min_fp_events (8).
        assert!(!policy.should_rebuild(&log));
        log.record(b"x", 2.0);
        assert!(policy.should_rebuild(&log));
        log.reset_window();
        assert!(!policy.should_rebuild(&log));
        assert_eq!(log.total_fp_events(), 8, "lifetime counter survives reset");
    }

    #[test]
    fn fp_rate_policy_uses_noted_lookups() {
        let mut log = FpLog::new(1024, 1.0);
        let policy = AdaptPolicy::fp_rate(0.10);
        for _ in 0..100 {
            log.note_lookup();
        }
        for _ in 0..9 {
            log.record(b"x", 1.0);
        }
        assert!((log.window_fp_rate() - 0.09).abs() < 1e-12);
        assert!(!policy.should_rebuild(&log), "9% is under the 10% envelope");
        log.record(b"x", 1.0);
        assert!(policy.should_rebuild(&log));
    }

    #[test]
    fn no_lookups_means_zero_rate() {
        let log = FpLog::new(4, 1.0);
        assert_eq!(log.window_fp_rate(), 0.0);
        assert!(!AdaptPolicy::fp_rate(0.0001).should_rebuild(&log));
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_rejected() {
        let _ = FpLog::new(0, 0.9);
    }

    #[test]
    #[should_panic(expected = "decay must be in (0, 1]")]
    fn bad_decay_rejected() {
        let _ = FpLog::new(8, 1.5);
    }

    #[test]
    fn decide_picks_the_kind_that_fixes_the_dominant_problem() {
        let mut log = FpLog::new(64, 1.0);
        let policy = AdaptPolicy::cost_threshold(10.0).with_saturation(1.5);

        // Quiet log, unsaturated single filter: nothing to do.
        assert_eq!(policy.decide(&log, 1.0, 1), None);
        // Saturation alone resizes a single-generation filter...
        assert_eq!(policy.decide(&log, 1.6, 1), Some(RebuildKind::Resize));
        // ...and folds a multi-generation stack.
        assert_eq!(policy.decide(&log, 1.6, 3), Some(RebuildKind::Compact));

        for _ in 0..8 {
            log.record(b"hot", 2.0);
        }
        assert!(policy.should_rebuild(&log));
        // FP pressure on an unsaturated single filter rehashes in place.
        assert_eq!(policy.decide(&log, 1.0, 1), Some(RebuildKind::Rehash));
        // FP pressure on a stack still folds — rehashing one tier of a
        // stack would leave the stacked probe cost in place.
        assert_eq!(policy.decide(&log, 1.0, 4), Some(RebuildKind::Compact));
        // Both triggers at once on a single filter: resize wins (the new
        // geometry gets fresh hints anyway).
        assert_eq!(policy.decide(&log, 2.0, 1), Some(RebuildKind::Resize));
    }

    #[test]
    fn default_policies_never_trigger_on_saturation() {
        let log = FpLog::new(8, 1.0);
        let policy = AdaptPolicy::cost_threshold(10.0);
        assert_eq!(policy.decide(&log, 100.0, 5), None);
        assert_eq!(RebuildKind::Compact.as_str(), "compact");
        assert_eq!(RebuildKind::Resize.to_string(), "resize");
        assert_eq!(RebuildKind::Rehash.to_string(), "rehash");
    }

    #[test]
    fn mined_hints_are_strictly_key_unique_and_deterministic() {
        let mut log = FpLog::new(256, 0.95);
        for i in 0..200 {
            log.record(format!("k{}", i % 17).as_bytes(), 1.0 + (i % 3) as f64);
        }
        let a = log.mine_hints(100);
        let b = log.mine_hints(100);
        assert_eq!(a, b, "mining must be deterministic");
        let mut keys: Vec<&[u8]> = a.iter().map(|(k, _)| k.as_slice()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), a.len(), "duplicate key survived mining");
    }
}
