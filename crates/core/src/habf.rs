//! The public HABF filter: construction configuration and the two-round
//! zero-FNR query (paper §III-C, §III-E, Fig 1).

use crate::hash_expressor::HashExpressor;
use crate::tpjo::{self, BuildStats, TpjoConfig};
use habf_filters::Filter;
use habf_hashing::{HashFamily, HashId, HashProvider, FAMILY_SIZE};
use habf_util::{Backing, BitVec};

/// Construction parameters (paper §V-D defaults).
#[derive(Clone, Debug)]
pub struct HabfConfig {
    /// Total space budget in bits, split between the Bloom array (`∆2`)
    /// and the HashExpressor (`∆1`).
    pub total_bits: usize,
    /// Space allocation ratio `∆ = ∆1/∆2`; the paper's optimum is 0.25
    /// (HashExpressor : Bloom = 1 : 4, Fig 9a).
    pub delta: f64,
    /// Hash functions per key (paper default 3).
    pub k: usize,
    /// HashExpressor cell width `α` in bits (paper default 4, Fig 9b).
    pub cell_bits: u32,
    /// Build seed: drives `H0` selection and TPJO's Case-1 randomness.
    pub seed: u64,
    /// Termination guard for class-(c) requeues.
    pub requeue_cap: u8,
}

/// Why a [`HabfConfig`] (or [`crate::sharded::ShardedConfig`]) was
/// rejected by validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `total_bits` is zero — there is no space to build anything.
    ZeroBudget,
    /// `delta` is not a finite positive ratio. `delta = 0` starves the
    /// HashExpressor, and `delta ≤ -1` flips the sign of the ∆1 share in
    /// [`HabfConfig::split`], corrupting the budget split.
    NonPositiveDelta,
    /// `cell_bits` outside `2..=16`. `cell_bits = 1` leaves zero
    /// addressable hash ids (`usable_hashes() == 0`), and `0` shifts out
    /// of range entirely.
    BadCellBits,
    /// `k` is zero, above [`crate::MAX_K`], or larger than the number of
    /// family functions addressable with `cell_bits`.
    BadK,
    /// A sharded build was asked for zero shards.
    ZeroShards,
    /// The shard count exceeds what the persist container can frame
    /// (`crate::sharded::MAX_SHARDS`); building it would produce a filter
    /// that serializes but can never be loaded back.
    TooManyShards,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::ZeroBudget => write!(f, "total_bits must be > 0"),
            ConfigError::NonPositiveDelta => {
                write!(f, "delta must be a finite ratio > 0")
            }
            ConfigError::BadCellBits => write!(f, "cell_bits must be in 2..=16"),
            ConfigError::BadK => write!(
                f,
                "k must be in 1..={} and addressable with cell_bits",
                crate::MAX_K
            ),
            ConfigError::ZeroShards => write!(f, "shard count must be > 0"),
            ConfigError::TooManyShards => write!(
                f,
                "shard count exceeds the persistable maximum of {}",
                crate::sharded::MAX_SHARDS
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl HabfConfig {
    /// The paper's default configuration for a given total budget.
    #[must_use]
    pub fn with_total_bits(total_bits: usize) -> Self {
        Self {
            total_bits,
            delta: 0.25,
            k: 3,
            cell_bits: 4,
            seed: 0x4841_4246, // "HABF"
            requeue_cap: 3,
        }
    }

    /// Checked constructor: the paper's defaults with `total_bits`,
    /// rejected if degenerate (zero budget).
    ///
    /// # Errors
    /// Returns the first failing [`ConfigError`].
    pub fn try_with_total_bits(total_bits: usize) -> Result<Self, ConfigError> {
        let cfg = Self::with_total_bits(total_bits);
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validates the configuration, rejecting the degenerate corners that
    /// would otherwise corrupt construction: a zero budget, `delta ≤ 0`
    /// (or non-finite) which breaks [`HabfConfig::split`], `cell_bits`
    /// outside `2..=16` (`cell_bits = 1` makes [`HabfConfig::usable_hashes`]
    /// return 0), and a `k` that no cell can express.
    ///
    /// [`Habf::build`] and [`FHabf::build`] call this and panic with the
    /// error message on a rejected configuration.
    ///
    /// # Errors
    /// Returns the first failing [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.total_bits == 0 {
            return Err(ConfigError::ZeroBudget);
        }
        if !self.delta.is_finite() || self.delta <= 0.0 {
            return Err(ConfigError::NonPositiveDelta);
        }
        if !(2..=16).contains(&self.cell_bits) {
            return Err(ConfigError::BadCellBits);
        }
        if self.k == 0 || self.k > crate::MAX_K || self.k > self.usable_hashes() {
            return Err(ConfigError::BadK);
        }
        Ok(())
    }

    /// Splits the budget into `(m, omega)` = (Bloom bits, HashExpressor
    /// cells).
    #[must_use]
    pub fn split(&self) -> (usize, usize) {
        // ∆ = ∆1/∆2 and ∆1 + ∆2 = total  =>  ∆1 = total·∆/(1+∆).
        let d1 = (self.total_bits as f64 * self.delta / (1.0 + self.delta)) as usize;
        let d2 = self.total_bits - d1;
        let omega = (d1 / self.cell_bits as usize).max(1);
        (d2.max(1), omega)
    }

    /// Number of family functions addressable with this cell width.
    #[must_use]
    pub fn usable_hashes(&self) -> usize {
        ((1usize << (self.cell_bits - 1)) - 1).min(FAMILY_SIZE)
    }

    fn tpjo(&self, use_gamma: bool) -> TpjoConfig {
        let (m, omega) = self.split();
        TpjoConfig {
            k: self.k,
            m,
            omega,
            cell_bits: self.cell_bits,
            use_gamma,
            requeue_cap: self.requeue_cap,
            seed: self.seed,
            enable_class_c: true,
            overlap_tiebreak: true,
        }
    }
}

/// The Hash Adaptive Bloom Filter.
#[derive(Clone)]
pub struct Habf {
    bloom: BitVec,
    he: HashExpressor,
    h0: Vec<HashId>,
    family: HashFamily,
    stats: BuildStats,
}

impl Habf {
    /// Builds an HABF from the positive set and the cost-annotated
    /// negative set, running the full TPJO optimization.
    ///
    /// # Panics
    /// Panics on a degenerate configuration (see [`HabfConfig::validate`])
    /// or an infeasible one (see [`tpjo::run`]).
    #[must_use]
    pub fn build(
        positives: &[impl AsRef<[u8]>],
        negatives: &[(impl AsRef<[u8]>, f64)],
        config: &HabfConfig,
    ) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid HabfConfig: {e}");
        }
        let family = HashFamily::with_size(config.usable_hashes());
        let out = tpjo::run(positives, negatives, &family, &config.tpjo(true));
        Self {
            bloom: out.bloom,
            he: out.he,
            h0: out.h0,
            family,
            stats: out.stats,
        }
    }

    /// The initial hash-function ids `H0`.
    #[must_use]
    pub fn h0(&self) -> &[HashId] {
        &self.h0
    }

    /// Optimizer counters.
    #[must_use]
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Re-runs the full TPJO construction against fresh positive and
    /// costed negative sets **at this filter's exact geometry** — Bloom
    /// size `m`, HashExpressor `ω`/`α`, chain length `k`, and hash family
    /// are all preserved, only the bit contents and customized subsets
    /// change.
    ///
    /// This is the adaptation loop's rebuild: geometry preservation is
    /// what makes mined false positives valid evidence against the new
    /// filter. The space budget cannot drift (rebuilding at
    /// [`Filter::space_bits`] through a fresh [`HabfConfig`] can lose
    /// bits to cell rounding, silently re-randomizing every hash position
    /// and replacing the observed false positives with a fresh random
    /// crop). Works on deserialized filters — no original config needed.
    ///
    /// Two build knobs are not recoverable from a built filter and fall
    /// back to defaults: `requeue_cap` (not serialized; rebuilds use the
    /// default of 3) and the seed — pass the build seed to keep `H0`
    /// selection stable so only keys the optimizer must adjust change
    /// their answers.
    pub fn rebuild(
        &mut self,
        positives: &[impl AsRef<[u8]>],
        negatives: &[(impl AsRef<[u8]>, f64)],
        seed: u64,
    ) {
        let cfg = TpjoConfig {
            k: self.h0.len(),
            m: self.bloom.len(),
            omega: self.he.omega(),
            cell_bits: self.he.cell_bits(),
            use_gamma: true,
            requeue_cap: 3,
            seed,
            enable_class_c: true,
            overlap_tiebreak: true,
        };
        let out = tpjo::run(positives, negatives, &self.family, &cfg);
        self.bloom = out.bloom;
        self.he = out.he;
        self.h0 = out.h0;
        self.stats = out.stats;
    }

    /// The HashExpressor occupancy `t` (chains stored).
    #[must_use]
    pub fn expressor_entries(&self) -> usize {
        self.he.inserted()
    }

    /// Bloom-array fill ratio after optimization.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.bloom.fill_ratio()
    }

    fn round1(&self, key: &[u8]) -> bool {
        let m = self.bloom.len();
        // Positions are reduced modulo `m`, so the bounds-masked probe is
        // exact and keeps the panic branch out of the hot loop.
        self.h0
            .iter()
            .all(|&id| self.bloom.get_probe(self.family.position(id, key, m)))
    }

    /// The round-2 re-test: retrieve the customized hash subset from the
    /// HashExpressor and probe it (the rare path — round 1 answers most
    /// keys).
    fn round2(&self, key: &[u8]) -> bool {
        match self.he.query(key, &self.family) {
            Some(phi) => {
                let m = self.bloom.len();
                phi.iter()
                    .all(|&id| self.bloom.get_probe(self.family.position(id, key, m)))
            }
            None => false,
        }
    }

    /// Phase 1 of the batch pipeline: computes `key`'s round-1 probe
    /// positions **once**, appends them to `plan`, and (when `prefetch`)
    /// hints their cache lines. Phase 2 ([`Habf::contains_planned`])
    /// probes the same positions, so the pipeline never re-derives them —
    /// an earlier prefetch design that re-hashed at test time cost more
    /// than the hidden latency repaid.
    #[inline]
    pub fn plan_round1(&self, key: &[u8], plan: &mut Vec<usize>, prefetch: bool) {
        let m = self.bloom.len();
        for &id in &self.h0 {
            let pos = self.family.position(id, key, m);
            if prefetch {
                self.bloom.prefetch_bit(pos);
            }
            plan.push(pos);
        }
    }

    /// Phase 2 of the batch pipeline: finishes the two-round query given
    /// the round-1 positions [`Habf::plan_round1`] derived for this key.
    /// Round 2 still hashes, but it only runs for round-1 misses.
    #[inline]
    #[must_use]
    pub fn contains_planned(&self, key: &[u8], plan: &[usize]) -> bool {
        self.bloom.all_set(plan) || self.round2(key)
    }

    /// Where this filter's payload words live: `owned` after a build or a
    /// copying load, a shared/mmap view after a zero-copy load — until
    /// the first mutation promotes the touched part to owned words.
    #[must_use]
    pub fn backing(&self) -> Backing {
        self.bloom.backing().combine(self.he.cells().backing())
    }

    /// Inserts a positive key after construction (update extension).
    ///
    /// The paper's construction is static; this follows the obvious
    /// incremental path the related-work section contrasts against
    /// (CA-LBF/IA-LBF, §II): the new key is inserted with `H0`, so round 1
    /// always accepts it — zero FNR is preserved. The trade-off is that the
    /// freshly set bits may resurrect false positives that TPJO had
    /// optimized away; [`Habf::stats`] still describe the original build.
    /// Rebuild periodically if the insert stream is large.
    pub fn insert(&mut self, key: &[u8]) {
        let m = self.bloom.len();
        for &id in &self.h0 {
            self.bloom.set(self.family.position(id, key, m));
        }
    }

    /// Diagnostic query returning *which* round answered (used by tests,
    /// examples, and the two-round-latency discussion of Fig 12).
    #[must_use]
    pub fn query_verbose(&self, key: &[u8]) -> QueryOutcome {
        if self.round1(key) {
            return QueryOutcome::Round1Positive;
        }
        match self.he.query(key, &self.family) {
            Some(phi) => {
                let m = self.bloom.len();
                if phi
                    .iter()
                    .all(|&id| self.bloom.get_probe(self.family.position(id, key, m)))
                {
                    QueryOutcome::Round2Positive
                } else {
                    QueryOutcome::Negative
                }
            }
            None => QueryOutcome::Negative,
        }
    }

    /// The §III-F envelope on this filter's FPR given its final state:
    /// `F_habf ≤ (ω + t)/ω · F*_bf` with `F*_bf` estimated from the final
    /// bit load.
    #[must_use]
    pub fn fpr_envelope(&self) -> f64 {
        let rho = self.bloom.fill_ratio();
        let f_star = rho.powi(self.h0.len() as i32);
        crate::theory::habf_fpr_envelope(f_star, self.he.inserted(), self.he.omega())
    }

    /// The persist image of this filter (header scalars + borrowed word
    /// arrays), shared by the legacy writer and the v2 frame writer.
    pub(crate) fn image(&self) -> crate::persist::Image<'_> {
        crate::persist::Image {
            kind: 0,
            k: self.h0.len(),
            cell_bits: self.he.cell_bits(),
            h0: self.h0.clone(),
            family: self.family.len(),
            sim_seed: 0,
            bloom: &self.bloom,
            he: &self.he,
        }
    }

    /// Rebuilds a filter from a decoded persist image (legacy or v2; the
    /// storage may be owned words or a zero-copy view).
    pub(crate) fn from_decoded(d: crate::persist::Decoded) -> Self {
        Self {
            bloom: d.bloom,
            he: d.he,
            h0: d.h0,
            family: HashFamily::with_size(d.family),
            stats: BuildStats::default(),
        }
    }

    /// Serializes the filter to the versioned binary image described in
    /// [`crate::persist`]. Build-time [`BuildStats`] are *not* persisted.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::persist::encode(&self.image())
    }

    /// Loads a filter persisted by [`Habf::to_bytes`].
    ///
    /// # Errors
    /// Returns a [`crate::persist::PersistError`] on any malformed input;
    /// never panics on untrusted bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, crate::persist::PersistError> {
        Ok(Self::from_decoded(crate::persist::decode(buf, 0)?))
    }
}

impl crate::persist::V2Shard for Habf {
    fn v2_image(&self) -> crate::persist::Image<'_> {
        self.image()
    }

    fn from_decoded(d: crate::persist::Decoded) -> Self {
        Habf::from_decoded(d)
    }
}

/// Which round of the two-round query (paper Fig 1) decided the answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The initial functions `H0` matched — positive.
    Round1Positive,
    /// The HashExpressor supplied a chain that matched — positive.
    Round2Positive,
    /// Both rounds rejected — negative.
    Negative,
}

impl Filter for Habf {
    /// The two-round query (paper Fig 1): test with `H0`; on a miss,
    /// retrieve the customized subset from the HashExpressor and re-test.
    fn contains(&self, key: &[u8]) -> bool {
        self.round1(key) || self.round2(key)
    }

    fn space_bits(&self) -> usize {
        self.bloom.len() + self.he.space_bits()
    }

    fn name(&self) -> &'static str {
        "HABF"
    }
}

/// The fast variant (paper §III-G): the whole family is simulated by
/// double hashing from one 128-bit base hash, and Γ is disabled during
/// construction.
#[derive(Clone)]
pub struct FHabf {
    bloom: BitVec,
    he: HashExpressor,
    h0: Vec<HashId>,
    family: habf_hashing::double::SimulatedFamily,
    stats: BuildStats,
}

impl FHabf {
    /// Builds an f-HABF (double hashing, Γ disabled).
    ///
    /// # Panics
    /// Panics on a degenerate configuration (see [`HabfConfig::validate`])
    /// or an infeasible one (see [`tpjo::run`]).
    #[must_use]
    pub fn build(
        positives: &[impl AsRef<[u8]>],
        negatives: &[(impl AsRef<[u8]>, f64)],
        config: &HabfConfig,
    ) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid HabfConfig: {e}");
        }
        let size = (1usize << (config.cell_bits - 1)) - 1;
        let family = habf_hashing::double::SimulatedFamily::new(size, config.seed ^ 0xFA57);
        let out = tpjo::run(positives, negatives, &family, &config.tpjo(false));
        Self {
            bloom: out.bloom,
            he: out.he,
            h0: out.h0,
            family,
            stats: out.stats,
        }
    }

    /// Optimizer counters.
    #[must_use]
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The initial hash-function ids `H0`.
    #[must_use]
    pub fn h0(&self) -> &[HashId] {
        &self.h0
    }

    /// Re-runs the Γ-disabled fast construction at this filter's exact
    /// geometry (see [`Habf::rebuild`]).
    pub fn rebuild(
        &mut self,
        positives: &[impl AsRef<[u8]>],
        negatives: &[(impl AsRef<[u8]>, f64)],
        seed: u64,
    ) {
        let cfg = TpjoConfig {
            k: self.h0.len(),
            m: self.bloom.len(),
            omega: self.he.omega(),
            cell_bits: self.he.cell_bits(),
            use_gamma: false,
            requeue_cap: 3,
            seed,
            enable_class_c: true,
            overlap_tiebreak: true,
        };
        let out = tpjo::run(positives, negatives, &self.family, &cfg);
        self.bloom = out.bloom;
        self.he = out.he;
        self.h0 = out.h0;
        self.stats = out.stats;
    }

    /// Where this filter's payload words live (see [`Habf::backing`]).
    #[must_use]
    pub fn backing(&self) -> Backing {
        self.bloom.backing().combine(self.he.cells().backing())
    }

    /// Phase 1 of the batch pipeline (see [`Habf::plan_round1`]): one
    /// xxh128 evaluation derives all round-1 positions, which are
    /// appended to `plan` and (when `prefetch`) hinted. Only round-1
    /// misses pay a second base-hash evaluation, in
    /// [`FHabf::contains_planned`]'s round 2.
    #[inline]
    pub fn plan_round1(&self, key: &[u8], plan: &mut Vec<usize>, prefetch: bool) {
        let bound = habf_hashing::double::KeyBoundSimulated::new(&self.family, key);
        let m = self.bloom.len();
        for &id in &self.h0 {
            let pos = bound.position(id, key, m);
            if prefetch {
                self.bloom.prefetch_bit(pos);
            }
            plan.push(pos);
        }
    }

    /// Phase 2 of the batch pipeline (see [`Habf::contains_planned`]).
    #[inline]
    #[must_use]
    pub fn contains_planned(&self, key: &[u8], plan: &[usize]) -> bool {
        if self.bloom.all_set(plan) {
            return true;
        }
        let bound = habf_hashing::double::KeyBoundSimulated::new(&self.family, key);
        let m = self.bloom.len();
        match self.he.query(key, &bound) {
            Some(phi) => phi
                .iter()
                .all(|&id| self.bloom.get_probe(bound.position(id, key, m))),
            None => false,
        }
    }

    /// The persist image of this filter (see [`Habf::image`]).
    pub(crate) fn image(&self) -> crate::persist::Image<'_> {
        crate::persist::Image {
            kind: 1,
            k: self.h0.len(),
            cell_bits: self.he.cell_bits(),
            h0: self.h0.clone(),
            family: habf_hashing::HashProvider::len(&self.family),
            sim_seed: self.family.seed(),
            bloom: &self.bloom,
            he: &self.he,
        }
    }

    /// Rebuilds a filter from a decoded persist image.
    pub(crate) fn from_decoded(d: crate::persist::Decoded) -> Self {
        Self {
            bloom: d.bloom,
            he: d.he,
            h0: d.h0,
            family: habf_hashing::double::SimulatedFamily::new(d.family, d.sim_seed),
            stats: BuildStats::default(),
        }
    }

    /// Serializes the filter (see [`Habf::to_bytes`]).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::persist::encode(&self.image())
    }

    /// Loads a filter persisted by [`FHabf::to_bytes`].
    ///
    /// # Errors
    /// Returns a [`crate::persist::PersistError`] on any malformed input.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, crate::persist::PersistError> {
        Ok(Self::from_decoded(crate::persist::decode(buf, 1)?))
    }
}

impl crate::persist::V2Shard for FHabf {
    fn v2_image(&self) -> crate::persist::Image<'_> {
        self.image()
    }

    fn from_decoded(d: crate::persist::Decoded) -> Self {
        FHabf::from_decoded(d)
    }
}

impl Filter for FHabf {
    fn contains(&self, key: &[u8]) -> bool {
        // One xxh128 evaluation serves both rounds and the chain walk.
        let bound = habf_hashing::double::KeyBoundSimulated::new(&self.family, key);
        let m = self.bloom.len();
        let round1 = self
            .h0
            .iter()
            .all(|&id| self.bloom.get_probe(bound.position(id, key, m)));
        if round1 {
            return true;
        }
        match self.he.query(key, &bound) {
            Some(phi) => phi
                .iter()
                .all(|&id| self.bloom.get_probe(bound.position(id, key, m))),
            None => false,
        }
    }

    fn space_bits(&self) -> usize {
        self.bloom.len() + self.he.space_bits()
    }

    fn name(&self) -> &'static str {
        "f-HABF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize, tag: &str) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("{tag}:{i}").into_bytes()).collect()
    }

    fn config(total_bits: usize) -> HabfConfig {
        HabfConfig::with_total_bits(total_bits)
    }

    #[test]
    fn split_follows_delta() {
        let cfg = HabfConfig {
            total_bits: 1_000_000,
            delta: 0.25,
            ..config(0)
        };
        let (m, omega) = cfg.split();
        // ∆1 = 200k bits, ∆2 = 800k bits, ω = 200k/4 = 50k cells.
        assert_eq!(m, 800_000);
        assert_eq!(omega, 50_000);
    }

    #[test]
    fn usable_hashes_by_cell_width() {
        let mut cfg = config(1000);
        cfg.cell_bits = 3;
        assert_eq!(cfg.usable_hashes(), 3);
        cfg.cell_bits = 4;
        assert_eq!(cfg.usable_hashes(), 7);
        cfg.cell_bits = 5;
        assert_eq!(cfg.usable_hashes(), 15);
        cfg.cell_bits = 6;
        assert_eq!(cfg.usable_hashes(), 22); // capped at |H|
    }

    #[test]
    fn habf_zero_false_negatives() {
        let pos = keys(3_000, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(3_000, "neg").into_iter().map(|k| (k, 1.0)).collect();
        let f = Habf::build(&pos, &neg, &config(3_000 * 10));
        for k in &pos {
            assert!(f.contains(k), "HABF dropped a member");
        }
    }

    #[test]
    fn fhabf_zero_false_negatives() {
        let pos = keys(3_000, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(3_000, "neg").into_iter().map(|k| (k, 1.0)).collect();
        let f = FHabf::build(&pos, &neg, &config(3_000 * 10));
        for k in &pos {
            assert!(f.contains(k), "f-HABF dropped a member");
        }
    }

    #[test]
    fn habf_beats_plain_bloom_on_known_negatives() {
        let pos = keys(4_000, "pos");
        let neg_keys = keys(4_000, "neg");
        let neg: Vec<(Vec<u8>, f64)> = neg_keys.iter().map(|k| (k.clone(), 1.0)).collect();
        let total = 4_000 * 8;
        let habf = Habf::build(&pos, &neg, &config(total));
        let bf = habf_filters::BloomFilter::build(&pos, total);
        let habf_fp = neg_keys.iter().filter(|k| habf.contains(k)).count();
        let bf_fp = neg_keys.iter().filter(|k| bf.contains(k)).count();
        assert!(
            habf_fp < bf_fp,
            "HABF {habf_fp} FPs not better than BF {bf_fp}"
        );
    }

    #[test]
    fn space_accounting_matches_budget() {
        let pos = keys(500, "pos");
        let neg: Vec<(Vec<u8>, f64)> = vec![];
        let total = 500 * 12;
        let f = Habf::build(&pos, &neg, &config(total));
        // m + ω·α ≤ total (cell rounding may drop a few bits).
        assert!(f.space_bits() <= total);
        assert!(f.space_bits() > total * 9 / 10);
    }

    #[test]
    fn no_negatives_degenerates_to_bloom() {
        let pos = keys(1_000, "pos");
        let neg: Vec<(Vec<u8>, f64)> = vec![];
        let f = Habf::build(&pos, &neg, &config(1_000 * 10));
        assert_eq!(f.stats().initial_collision_keys, 0);
        assert_eq!(f.expressor_entries(), 0);
        for k in &pos {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn names() {
        let pos = keys(100, "p");
        let neg: Vec<(Vec<u8>, f64)> = vec![];
        assert_eq!(Habf::build(&pos, &neg, &config(2_000)).name(), "HABF");
        assert_eq!(FHabf::build(&pos, &neg, &config(2_000)).name(), "f-HABF");
    }

    #[test]
    fn incremental_insert_preserves_zero_fnr() {
        let pos = keys(1_000, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(1_000, "neg").into_iter().map(|k| (k, 1.0)).collect();
        let mut f = Habf::build(&pos, &neg, &config(2_000 * 10));
        let late = keys(500, "late");
        for k in &late {
            f.insert(k);
        }
        for k in pos.iter().chain(late.iter()) {
            assert!(f.contains(k), "post-insert member dropped");
        }
    }

    #[test]
    fn query_verbose_distinguishes_rounds() {
        let pos = keys(2_000, "pos");
        let neg: Vec<(Vec<u8>, f64)> = keys(2_000, "neg").into_iter().map(|k| (k, 1.0)).collect();
        let f = Habf::build(&pos, &neg, &config(2_000 * 8));
        let mut round1 = 0usize;
        let mut round2 = 0usize;
        for k in &pos {
            match f.query_verbose(k) {
                QueryOutcome::Round1Positive => round1 += 1,
                QueryOutcome::Round2Positive => round2 += 1,
                QueryOutcome::Negative => panic!("member rejected"),
            }
        }
        // Unadjusted keys answer in round 1. Adjusted keys normally need
        // round 2, except when other keys' bits happen to cover their H0
        // positions — so round2 is bounded by, and close to, the count.
        let adjusted = f.stats().adjusted_positives;
        assert!(round2 <= adjusted, "round2 {round2} > adjusted {adjusted}");
        assert!(
            round2 * 2 >= adjusted,
            "round2 {round2} too far below adjusted {adjusted}"
        );
        assert_eq!(round1 + round2, pos.len());
        // Negatives answered negative must stay negative in both views.
        for (k, _) in neg.iter().take(200) {
            let verbose = f.query_verbose(k) != QueryOutcome::Negative;
            assert_eq!(verbose, f.contains(k));
        }
    }

    #[test]
    fn empty_positive_set_builds_an_always_negative_filter() {
        // Regression: a sharded build can hand a shard zero keys; that
        // shard must build (not panic) and reject everything.
        let pos: Vec<Vec<u8>> = vec![];
        let neg: Vec<(Vec<u8>, f64)> = keys(100, "neg").into_iter().map(|k| (k, 1.0)).collect();
        let f = Habf::build(&pos, &neg, &config(1_000));
        assert_eq!(f.fill_ratio(), 0.0);
        for (k, _) in &neg {
            assert!(!f.contains(k), "empty filter accepted a key");
        }
        let restored = Habf::from_bytes(&f.to_bytes()).expect("empty filter persists");
        assert!(!restored.contains(b"anything"));
    }

    #[test]
    fn validate_accepts_defaults_and_paper_ranges() {
        assert_eq!(config(1_000).validate(), Ok(()));
        let mut cfg = config(1_000);
        cfg.cell_bits = 5;
        cfg.k = 8;
        assert_eq!(cfg.validate(), Ok(()));
        assert!(HabfConfig::try_with_total_bits(64).is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        // cell_bits = 1 leaves zero addressable ids (usable_hashes() == 0)
        // and used to fall through to a confusing family-size panic.
        let mut cfg = config(1_000);
        cfg.cell_bits = 1;
        assert_eq!(cfg.validate(), Err(ConfigError::BadCellBits));
        cfg.cell_bits = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::BadCellBits));
        cfg.cell_bits = 17;
        assert_eq!(cfg.validate(), Err(ConfigError::BadCellBits));

        // delta ≤ 0 (or non-finite) corrupts split(): delta = -1 divides
        // by zero and negative ratios flip the ∆1 share's sign.
        let mut cfg = config(1_000);
        cfg.delta = 0.0;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveDelta));
        cfg.delta = -1.0;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveDelta));
        cfg.delta = f64::NAN;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveDelta));
        cfg.delta = f64::INFINITY;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveDelta));

        let mut cfg = config(1_000);
        cfg.k = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::BadK));
        cfg.k = crate::MAX_K + 1;
        assert_eq!(cfg.validate(), Err(ConfigError::BadK));
        // k = 8 is legal in general but not addressable by 4-bit cells.
        cfg.k = 8;
        assert_eq!(cfg.validate(), Err(ConfigError::BadK));

        let mut cfg = config(1_000);
        cfg.total_bits = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroBudget));
        assert!(matches!(
            HabfConfig::try_with_total_bits(0),
            Err(ConfigError::ZeroBudget)
        ));
    }

    #[test]
    #[should_panic(expected = "cell_bits must be in 2..=16")]
    fn build_panics_cleanly_on_one_bit_cells() {
        let pos = keys(10, "p");
        let neg: Vec<(Vec<u8>, f64)> = vec![];
        let mut cfg = config(1_000);
        cfg.cell_bits = 1;
        let _ = Habf::build(&pos, &neg, &cfg);
    }

    #[test]
    #[should_panic(expected = "delta must be a finite ratio > 0")]
    fn fhabf_build_panics_cleanly_on_negative_delta() {
        let pos = keys(10, "p");
        let neg: Vec<(Vec<u8>, f64)> = vec![];
        let mut cfg = config(1_000);
        cfg.delta = -0.5;
        let _ = FHabf::build(&pos, &neg, &cfg);
    }

    #[test]
    fn fpr_envelope_is_a_sane_bound() {
        let pos = keys(3_000, "pos");
        let neg_keys = keys(3_000, "neg");
        let neg: Vec<(Vec<u8>, f64)> = neg_keys.iter().map(|k| (k.clone(), 1.0)).collect();
        let f = Habf::build(&pos, &neg, &config(3_000 * 10));
        let env = f.fpr_envelope();
        assert!((0.0..=1.0).contains(&env));
        // The envelope is an estimate built from the *final* load; measured
        // FPR on fresh keys should sit at or below a small multiple of it.
        let fresh = keys(3_000, "fresh");
        let fp = fresh.iter().filter(|k| f.contains(k)).count();
        let measured = fp as f64 / fresh.len() as f64;
        assert!(
            measured <= env * 3.0 + 0.01,
            "measured {measured} far above envelope {env}"
        );
    }
}
