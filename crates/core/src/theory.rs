//! Theoretical bounds of Section IV, used by the Fig 8 experiment.
//!
//! The paper bounds (i) the probability `P_ξ` that a unit mapped by a
//! collision key is adjustable (Theorem 4.1, Eq 3), (ii) the probability
//! `P_s(t)` that the t-th chain still fits the HashExpressor (Eq 11),
//! (iii) the expected number of optimized collision keys `E(t)`
//! (Theorem 4.2, Eq 12) and, combining them, (iv) the expected optimized
//! false-positive rate `E(F*_bf)` (Eq 19) plus the two-round envelope
//! `F_habf ≤ (ω+t)/ω · F*_bf` (§III-F).
//!
//! One input of Eq 12, `P'_c` — the probability that a positive key can be
//! adjusted to a *valid* replacement when every negative key is indexed in
//! Γ — is analyzed in the paper's appendix, which the arXiv version does
//! not include. [`p_prime_c`] therefore derives a Poisson-style estimate
//! documented inline; the Fig 8 experiment demonstrates that the resulting
//! Eq 19 bound still dominates the measured FPR, which is the property the
//! paper verifies experimentally (§IV-C).

/// Standard Bloom FPR before optimization: `F_bf = (1 − e^{−k/b})^k`
/// (Section II), with `b` bits per key.
#[must_use]
pub fn bloom_fpr(k: usize, bits_per_key: f64) -> f64 {
    let k = k as f64;
    (1.0 - (-k / bits_per_key).exp()).powf(k)
}

/// Theorem 4.1 (Eq 3): lower bound on the expected probability that a unit
/// hit by a collision key is single-mapped, `E(P_ξ) > (k/b)/(e^{k/b} − 1)`.
#[must_use]
pub fn p_xi_lower_bound(k: usize, bits_per_key: f64) -> f64 {
    let x = k as f64 / bits_per_key;
    x / (x.exp() - 1.0)
}

/// Eq 11: lower bound on the probability that the `t`-th chain fits,
/// `P_s(t) > (1 − (kt + k)/ω)^k` (clamped at 0).
#[must_use]
pub fn p_s_lower_bound(t: usize, k: usize, omega: usize) -> f64 {
    let base = 1.0 - (k as f64 * t as f64 + k as f64) / omega as f64;
    base.max(0.0).powi(k as i32)
}

/// Estimate of `P'_c`: the probability that the single adjustable positive
/// key of a collision key admits a *valid* replacement hash function when
/// all of `O` is indexed in Γ.
///
/// Derivation (our substitute for the paper's appendix): a candidate
/// `h_c ∈ H_c` fails only when its target bit is 0 **and** the bucket
/// conflicts after adjustment. With load factor `ρ = 1 − e^{−k/b}`:
///
/// * `P(bit = 1) = ρ` — class (a) succeeds outright;
/// * a bucket holds `Binomial(|O|·k, 1/m) ≈ Poisson(λ)`, `λ = |O|·k/m`,
///   optimized keys, each conflicting independently with probability
///   `ρ^{k−1}` (its other `k−1` bits all set), so
///   `P(bucket conflicts) = 1 − e^{−λ·ρ^{k−1}}`;
/// * the `|H_c| = |H| − k` candidates are treated as independent.
///
/// `P'_c ≈ 1 − [(1 − ρ)(1 − e^{−λ·ρ^{k−1}})]^{|H|−k}`.
#[must_use]
pub fn p_prime_c(k: usize, bits_per_key: f64, n_negative: usize, m: usize, family: usize) -> f64 {
    let rho = 1.0 - (-(k as f64) / bits_per_key).exp();
    let lambda = n_negative as f64 * k as f64 / m as f64;
    let bucket_conflicts = 1.0 - (-lambda * rho.powi(k as i32 - 1)).exp();
    let candidate_fails = (1.0 - rho) * bucket_conflicts;
    1.0 - candidate_fails.powi((family.saturating_sub(k)) as i32)
}

/// Theorem 4.2 (Eq 12): lower bound on the expected number of optimized
/// collision keys, `E(t) > T·P'_c·(ω − k²) / (ω + T·P'_c·k²)`.
#[must_use]
pub fn expected_optimized_lower_bound(
    t_queue: usize,
    p_prime_c: f64,
    omega: usize,
    k: usize,
) -> f64 {
    let t = t_queue as f64;
    let w = omega as f64;
    let k2 = (k * k) as f64;
    (t * p_prime_c * (w - k2) / (w + t * p_prime_c * k2)).max(0.0)
}

/// Eq 19: upper bound on the expected optimized Bloom FPR,
/// `E(F*_bf) < F_bf − E(t)/|O|` with `E(t)` from Eq 12 and
/// `T = F_bf · |O|` expected initial collision keys.
#[must_use]
pub fn f_star_upper_bound(
    k: usize,
    bits_per_key: f64,
    n_negative: usize,
    m: usize,
    omega: usize,
    family: usize,
) -> f64 {
    let fbf = bloom_fpr(k, bits_per_key);
    let t_queue = (fbf * n_negative as f64) as usize;
    let ppc = p_prime_c(k, bits_per_key, n_negative, m, family);
    let e_t = expected_optimized_lower_bound(t_queue, ppc, omega, k);
    (fbf - e_t / n_negative.max(1) as f64).max(0.0)
}

/// §III-F envelope: `F_habf ≤ (ω + t)/ω · F*_bf`.
#[must_use]
pub fn habf_fpr_envelope(f_star: f64, t_inserted: usize, omega: usize) -> f64 {
    f_star * (omega + t_inserted) as f64 / omega as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_fpr_known_points() {
        // b=10, k=7 -> ~0.819% (the classic optimum).
        let f = bloom_fpr(7, 10.0);
        assert!((f - 0.00819).abs() < 0.0005, "got {f}");
        // More space, lower FPR.
        assert!(bloom_fpr(7, 12.0) < bloom_fpr(7, 10.0));
    }

    #[test]
    fn p_xi_bound_is_a_probability_and_decreasing_in_load() {
        for (k, b) in [(2usize, 10.0f64), (4, 10.0), (8, 10.0), (4, 4.0), (4, 13.0)] {
            let p = p_xi_lower_bound(k, b);
            assert!((0.0..=1.0).contains(&p), "k={k} b={b}: {p}");
        }
        // Heavier load (larger k/b) => fewer single-mapped units.
        assert!(p_xi_lower_bound(2, 10.0) > p_xi_lower_bound(8, 10.0));
    }

    #[test]
    fn p_s_decreases_with_occupancy_and_clamps() {
        let a = p_s_lower_bound(0, 3, 1000);
        let b = p_s_lower_bound(100, 3, 1000);
        let c = p_s_lower_bound(500, 3, 1000);
        assert!(a > b && b > c);
        assert_eq!(p_s_lower_bound(10_000, 3, 1000), 0.0);
    }

    #[test]
    fn p_prime_c_behaves_monotonically() {
        // More family members -> more candidates -> higher success.
        let small = p_prime_c(3, 8.0, 100_000, 800_000, 5);
        let large = p_prime_c(3, 8.0, 100_000, 800_000, 15);
        assert!(large >= small);
        assert!((0.0..=1.0).contains(&small));
        assert!((0.0..=1.0).contains(&large));
    }

    #[test]
    fn expected_optimized_is_bounded_by_queue() {
        let e_t = expected_optimized_lower_bound(1_000, 0.9, 50_000, 3);
        assert!(e_t > 0.0);
        assert!(e_t <= 1_000.0);
        assert_eq!(expected_optimized_lower_bound(0, 0.9, 50_000, 3), 0.0);
    }

    #[test]
    fn f_star_bound_below_plain_bloom() {
        let b = 10.0;
        let k = 4;
        let n_neg = 100_000;
        let m = 1_000_000;
        let bound = f_star_upper_bound(k, b, n_neg, m, m / 16, 7);
        assert!(bound <= bloom_fpr(k, b));
        assert!(bound >= 0.0);
    }

    #[test]
    fn envelope_grows_gently_with_t() {
        let f = 0.01;
        assert_eq!(habf_fpr_envelope(f, 0, 1000), f);
        assert!(habf_fpr_envelope(f, 100, 1000) > f);
        assert!((habf_fpr_envelope(f, 100, 1000) - f * 1.1).abs() < 1e-12);
    }
}
