//! HashExpressor — the compact hash-function-subset table (paper §III-C).
//!
//! HashExpressor stores, for the *adjusted* positive keys only, the ordered
//! chain of their customized hash functions. It is an array of `ω` cells of
//! `α` bits; each cell is the 2-tuple ⟨endbit, hashindex⟩ with `hashindex`
//! in the low `α−1` bits, so a cell addresses at most `2^(α−1)−1` family
//! members and the all-zero pattern means *empty* (the paper's Fig 9(b)
//! studies α ∈ {3,4,5}).
//!
//! **Insertion** walks a chain: key `e` maps to cell `C[f(e)]` with the
//! predefined function `f`, then repeatedly to `C[h(e)]` with each hash `h`
//! freshly *marked valid*, marking one so-far-invalid member of `φ(e)` per
//! visited cell — Case 1 claims an empty cell with a random invalid member,
//! Case 2 piggybacks on a cell already holding an invalid member, Case 3
//! fails the insertion (paper Fig 2(b)). The `endbit` of the last visited
//! cell is set.
//!
//! **Query** follows the same chain and succeeds only if it collects `k`
//! functions ending at a cell with `endbit = 1`; otherwise the key keeps
//! the initial functions `H0` (paper Fig 2(c)). Inserted keys are always
//! recovered (zero FNR); never-inserted keys occasionally complete a chain
//! by accident, which is HashExpressor's own small FPR `F_h ≤ t/ω`
//! (paper §III-F).
//!
//! Insertion is split into [`HashExpressor::plan`] (pure simulation) and
//! [`HashExpressor::commit`], because TPJO's phase-II must *test* whether a
//! candidate `φ'(e_s)` fits before deciding anything (paper Fig 3), and
//! because the "maximized overlap" tie-break among candidate selections
//! needs each plan's shared-cell count (paper §III-D, example).

use habf_hashing::{xxhash, HashId, HashProvider, EMPTY_HASH_ID};
use habf_util::{PackedCells, Xoshiro256};

/// Seed of the predefined cell-addressing function `f`.
const F_SEED: u64 = 0x4841_4246_5F66; // "HABF_f"

/// A planned (not yet applied) HashExpressor insertion.
#[derive(Clone, Debug)]
pub struct InsertPlan {
    /// `(cell index, new raw cell value)` writes to apply.
    writes: Vec<(usize, u32)>,
    /// Number of Case-2 cells shared with previously inserted chains —
    /// higher is better under the paper's maximum-overlap rule.
    shared: usize,
    /// The hash ids in the order they were marked valid (= chain order).
    order: Vec<HashId>,
}

impl InsertPlan {
    /// Cells this plan shares with already-stored chains.
    #[must_use]
    pub fn shared_cells(&self) -> usize {
        self.shared
    }

    /// Chain order of the hash ids (for diagnostics/tests).
    #[must_use]
    pub fn chain(&self) -> &[HashId] {
        &self.order
    }
}

/// The packed cell table.
#[derive(Clone, Debug)]
pub struct HashExpressor {
    cells: PackedCells,
    cell_bits: u32,
    k: usize,
    inserted: usize,
}

impl HashExpressor {
    /// Creates a table of `omega` cells of `cell_bits` bits for chains of
    /// length `k`.
    ///
    /// # Panics
    /// Panics if `omega == 0`, `cell_bits` is not in `2..=16`, or `k == 0`.
    #[must_use]
    pub fn new(omega: usize, cell_bits: u32, k: usize) -> Self {
        assert!(omega > 0, "HashExpressor needs at least one cell");
        assert!(
            (2..=16).contains(&cell_bits),
            "cell size {cell_bits} not in 2..=16"
        );
        assert!(k > 0, "chains need at least one hash");
        Self {
            cells: PackedCells::new(omega, cell_bits),
            cell_bits,
            k,
            inserted: 0,
        }
    }

    /// Number of cells `ω`.
    #[must_use]
    pub fn omega(&self) -> usize {
        self.cells.len()
    }

    /// Cell width `α` in bits.
    #[must_use]
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// Largest addressable hash id, `2^(α−1) − 1`.
    #[must_use]
    pub fn max_hash_id(&self) -> usize {
        (1usize << (self.cell_bits - 1)) - 1
    }

    /// Number of committed chains `t`.
    #[must_use]
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Table size in bits (`ω · α`) — the `∆1` of the space split.
    #[must_use]
    pub fn space_bits(&self) -> usize {
        self.cells.len() * self.cell_bits as usize
    }

    #[inline]
    fn endbit_mask(&self) -> u32 {
        1u32 << (self.cell_bits - 1)
    }

    #[inline]
    fn index_mask(&self) -> u32 {
        self.endbit_mask() - 1
    }

    /// Cell addressed by the predefined function `f`.
    #[inline]
    fn f_cell(&self, key: &[u8]) -> usize {
        (xxhash::xxh64(key, F_SEED) % self.cells.len() as u64) as usize
    }

    /// Simulates inserting the subset `phi` for `key`; returns the plan or
    /// `None` when the chain hits Case 3 (paper's "failed to be inserted").
    ///
    /// `rng` drives the Case-1 "randomly choose an invalid hash function"
    /// step.
    ///
    /// # Panics
    /// Panics if `phi.len() != k` or any id exceeds [`Self::max_hash_id`].
    #[must_use]
    pub fn plan<P: HashProvider>(
        &self,
        key: &[u8],
        phi: &[HashId],
        provider: &P,
        rng: &mut Xoshiro256,
    ) -> Option<InsertPlan> {
        assert_eq!(phi.len(), self.k, "subset size must equal k");
        for &id in phi {
            assert!(
                id != EMPTY_HASH_ID && usize::from(id) <= self.max_hash_id(),
                "hash id {id} not addressable with {}-bit cells",
                self.cell_bits
            );
        }
        let omega = self.cells.len();
        let mut invalid: Vec<HashId> = phi.to_vec();
        let mut writes: Vec<(usize, u32)> = Vec::with_capacity(self.k);
        let mut order: Vec<HashId> = Vec::with_capacity(self.k);
        let mut shared = 0usize;
        let mut pos = self.f_cell(key);

        loop {
            // Read through the staged overlay first: the chain may revisit
            // a cell it claimed earlier in this same plan.
            let staged = writes
                .iter()
                .rev()
                .find(|(p, _)| *p == pos)
                .map(|&(_, v)| v);
            let value = staged.unwrap_or_else(|| self.cells.get(pos));
            if value == 0 {
                // Case 1: claim the empty cell with a random invalid member.
                let pick = rng.next_index(invalid.len());
                let h = invalid.swap_remove(pick);
                writes.push((pos, u32::from(h)));
                order.push(h);
            } else {
                let hidx = (value & self.index_mask()) as HashId;
                if let Some(i) = invalid.iter().position(|&x| x == hidx) {
                    // Case 2: share the cell; its stored index becomes valid.
                    invalid.swap_remove(i);
                    order.push(hidx);
                    if staged.is_none() {
                        shared += 1;
                    }
                } else {
                    // Case 3: occupied by a function not in φ(e) (or one
                    // already marked valid) — insertion fails.
                    return None;
                }
            }
            if invalid.is_empty() {
                // All k marked valid: set the endbit of the last cell.
                let val = writes
                    .iter()
                    .rev()
                    .find(|(p, _)| *p == pos)
                    .map(|&(_, v)| v)
                    .unwrap_or_else(|| self.cells.get(pos));
                writes.push((pos, val | self.endbit_mask()));
                return Some(InsertPlan {
                    writes,
                    shared,
                    order,
                });
            }
            let h = *order.last().expect("order non-empty");
            pos = (provider.hash_id(h, key) % omega as u64) as usize;
        }
    }

    /// Applies a plan produced by [`Self::plan`] against this same state.
    pub fn commit(&mut self, plan: &InsertPlan) {
        for &(pos, value) in &plan.writes {
            self.cells.set(pos, value);
        }
        self.inserted += 1;
    }

    /// Retrieves the stored subset for `key`, or `None` when the key keeps
    /// `H0` (empty cell on the chain, or the final cell's endbit unset).
    #[must_use]
    pub fn query<P: HashProvider>(&self, key: &[u8], provider: &P) -> Option<Vec<HashId>> {
        let omega = self.cells.len();
        let mut pos = self.f_cell(key);
        let mut phi = Vec::with_capacity(self.k);
        for step in 0..self.k {
            // `pos` is reduced modulo `omega`, so the bounds-masked probe
            // is exact and keeps the panic branch out of the query loop.
            let value = self.cells.get_probe(pos);
            if value == 0 {
                return None;
            }
            let h = (value & self.index_mask()) as HashId;
            phi.push(h);
            if step + 1 == self.k {
                if value & self.endbit_mask() != 0 {
                    return Some(phi);
                }
                return None;
            }
            pos = (provider.hash_id(h, key) % omega as u64) as usize;
        }
        unreachable!("loop returns within k steps");
    }

    /// Fraction of non-empty cells (diagnostics for the ∆ sweep of Fig 9a).
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        self.cells.count_nonzero() as f64 / self.cells.len() as f64
    }

    /// The backing cell array — used by persistence.
    #[must_use]
    pub fn cells(&self) -> &PackedCells {
        &self.cells
    }

    /// Rebuilds a table from its parts — used by persistence.
    ///
    /// # Panics
    /// Panics if the parts are inconsistent (see [`Self::new`]).
    #[must_use]
    pub fn from_parts(cells: PackedCells, k: usize, inserted: usize) -> Self {
        assert!(k > 0, "chains need at least one hash");
        let cell_bits = cells.width();
        assert!((2..=16).contains(&cell_bits), "cell size out of range");
        Self {
            cells,
            cell_bits,
            k,
            inserted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use habf_hashing::HashFamily;

    fn setup(omega: usize) -> (HashExpressor, HashFamily, Xoshiro256) {
        (
            HashExpressor::new(omega, 4, 3),
            HashFamily::with_size(7),
            Xoshiro256::new(42),
        )
    }

    #[test]
    fn inserted_chain_is_recovered_exactly() {
        let (mut he, family, mut rng) = setup(1024);
        let key = b"adjusted positive key";
        let phi: Vec<HashId> = vec![2, 5, 7];
        let plan = he.plan(key, &phi, &family, &mut rng).expect("fits");
        he.commit(&plan);
        let got = he.query(key, &family).expect("stored");
        let mut want = phi.clone();
        let mut got_sorted = got.clone();
        want.sort_unstable();
        got_sorted.sort_unstable();
        assert_eq!(got_sorted, want, "recovered set differs");
        assert_eq!(he.inserted(), 1);
    }

    #[test]
    fn absent_key_usually_returns_none() {
        let (mut he, family, mut rng) = setup(4096);
        for i in 0..50u32 {
            let key = format!("stored-{i}").into_bytes();
            let phi: Vec<HashId> = vec![1, 4, 6];
            if let Some(plan) = he.plan(&key, &phi, &family, &mut rng) {
                he.commit(&plan);
            }
        }
        let misses = (0..1000u32)
            .filter(|i| {
                he.query(format!("absent-{i}").as_bytes(), &family)
                    .is_none()
            })
            .count();
        // F_h <= t/ω = 50/4096 ≈ 1.2%; allow generous slack.
        assert!(misses > 950, "only {misses}/1000 absent keys rejected");
    }

    #[test]
    fn plan_does_not_mutate_state() {
        let (he, family, mut rng) = setup(256);
        let before = he.clone();
        let _ = he.plan(b"somekey", &[1, 2, 3], &family, &mut rng);
        assert_eq!(he.cells, before.cells);
        assert_eq!(he.inserted(), 0);
    }

    #[test]
    fn case2_sharing_is_detected() {
        let (mut he, family, mut rng) = setup(64);
        // Insert many chains into a small table; later chains should share
        // cells (Case 2) with earlier ones at this density.
        let mut any_shared = false;
        for i in 0..40u32 {
            let key = format!("key-{i}").into_bytes();
            if let Some(plan) = he.plan(&key, &[1, 2, 3], &family, &mut rng) {
                any_shared |= plan.shared_cells() > 0;
                he.commit(&plan);
            }
        }
        assert!(any_shared, "no chain ever shared a cell at high density");
    }

    #[test]
    fn full_table_rejects_new_chains() {
        let (mut he, family, mut rng) = setup(8);
        let mut failures = 0;
        for i in 0..100u32 {
            let key = format!("k{i}").into_bytes();
            match he.plan(&key, &[1, 2, 3], &family, &mut rng) {
                Some(plan) => he.commit(&plan),
                None => failures += 1,
            }
        }
        assert!(failures > 50, "tiny table accepted nearly everything");
    }

    #[test]
    fn zero_fnr_over_many_insertions() {
        let (mut he, family, mut rng) = setup(8192);
        let mut stored: Vec<(Vec<u8>, Vec<HashId>)> = Vec::new();
        for i in 0..400u32 {
            let key = format!("member-{i}").into_bytes();
            let phi: Vec<HashId> = {
                // Rotate through different subsets.
                let base = (i % 5) as u8;
                vec![1 + base % 7, 1 + (base + 2) % 7, 1 + (base + 4) % 7]
            };
            if let Some(plan) = he.plan(&key, &phi, &family, &mut rng) {
                he.commit(&plan);
                stored.push((key, phi));
            }
        }
        assert!(stored.len() > 300, "too few fits: {}", stored.len());
        for (key, phi) in &stored {
            let got = he.query(key, &family).expect("zero FNR violated");
            let mut a = got.clone();
            let mut b = phi.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn endbit_is_required() {
        // A chain that ends on a cell whose endbit is 0 must return None.
        // Construct the situation directly: store a 1-chain prefix by hand.
        let (mut he, family, _) = setup(128);
        let key = b"prefix-only";
        // Write the f-cell with a valid index but no endbit.
        let pos = he.f_cell(key);
        he.cells.set(pos, 3); // hashindex 3, endbit 0

        // The query follows to the next cells which are empty -> None,
        // or finishes without endbit -> None. Either way: None.
        assert!(he.query(key, &family).is_none());
    }

    #[test]
    fn max_hash_id_respects_cell_width() {
        assert_eq!(HashExpressor::new(10, 3, 2).max_hash_id(), 3);
        assert_eq!(HashExpressor::new(10, 4, 2).max_hash_id(), 7);
        assert_eq!(HashExpressor::new(10, 5, 2).max_hash_id(), 15);
    }

    #[test]
    #[should_panic(expected = "not addressable")]
    fn oversized_id_panics() {
        let (he, family, mut rng) = setup(10);
        let _ = he.plan(b"x", &[1, 2, 9], &family, &mut rng); // 9 > 7
    }

    #[test]
    fn space_bits_is_omega_alpha() {
        let he = HashExpressor::new(1000, 4, 3);
        assert_eq!(he.space_bits(), 4000);
    }
}
