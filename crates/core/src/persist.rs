//! Persistence: serialize built filters to compact binary formats and
//! load them back.
//!
//! The intended deployment (and the paper's setting) builds filters
//! *offline*, where the negative keys and costs are collected, and ships
//! them to query servers. Three formats coexist:
//!
//! The **`HABC` container** is the current, self-describing envelope every
//! [`crate::DynFilter`] writes through
//! [`crate::DynFilter::write_to`] and the
//! [`crate::registry`] loads:
//!
//! ```text
//! magic "HABC" | version u8 | id_len u8 | filter-id bytes (ASCII)
//! payload_len u64 | payload bytes…
//! ```
//!
//! The filter id names the payload codec in the registry, so any
//! registered filter — HABF family or baseline — round-trips through one
//! format, and loaders reject unknown ids with a typed error instead of
//! misparsing the payload.
//!
//! The **legacy `HABF` image** (unsharded HABF / f-HABF) doubles as the
//! container payload for those ids, so pre-container images remain
//! loadable byte-for-byte:
//!
//! ```text
//! magic "HABF" | version u8 | kind u8 (0 = HABF, 1 = f-HABF)
//! k u8 | cell_bits u8 | h0_len u8 | h0 bytes…
//! family u64 (member count, or simulated size)
//! sim_seed u64 (f-HABF only; 0 otherwise)
//! m u64 | bloom words…
//! omega u64 | inserted u64 | cell words…
//! ```
//!
//! The **legacy `HABS` image** frames per-shard `HABF` blobs the same way
//! and likewise doubles as the sharded ids' container payload.
//!
//! Hash-function ids are stable across versions (pinned by the golden
//! vectors in `habf-hashing`), so a persisted HashExpressor chain decodes
//! to the same functions forever. The entry points are
//! [`crate::Habf::to_bytes`] / [`crate::Habf::from_bytes`] and their
//! [`crate::FHabf`] counterparts (legacy images), and
//! [`crate::registry::load`] (any format).

use crate::hash_expressor::HashExpressor;
use habf_hashing::HashId;
use habf_util::{BitVec, PackedCells};

pub(crate) const MAGIC: &[u8; 4] = b"HABF";
const VERSION: u8 = 1;

/// Magic for the sharded container format framing per-shard blobs.
pub(crate) const SHARDED_MAGIC: &[u8; 4] = b"HABS";
const SHARDED_VERSION: u8 = 1;

/// Magic of the self-describing container format.
pub(crate) const CONTAINER_MAGIC: &[u8; 4] = b"HABC";

/// Current container version.
pub const CONTAINER_VERSION: u8 = 1;

/// Longest filter id the container header can name.
const MAX_ID_LEN: usize = 64;

/// Upper bound on the persisted shard count; rejects corrupt headers
/// before any per-shard allocation happens.
pub(crate) const MAX_SHARDS: usize = 65_536;

/// Errors loading a persisted filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer does not start with a known magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// The kind byte does not match the requested filter type.
    WrongKind,
    /// The container names a filter id absent from the
    /// [`crate::registry`].
    UnknownFilterId(String),
    /// The buffer ended early or a length field is inconsistent.
    Truncated,
    /// A field value is out of its legal range.
    Corrupt(&'static str),
}

impl core::fmt::Display for PersistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a HABF filter image"),
            PersistError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::WrongKind => write!(f, "filter kind mismatch"),
            PersistError::UnknownFilterId(id) => {
                write!(f, "container names unregistered filter id {id:?}")
            }
            PersistError::Truncated => write!(f, "truncated filter image"),
            PersistError::Corrupt(what) => write!(f, "corrupt filter image: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn words(&mut self, n: usize) -> Result<Vec<u64>, PersistError> {
        let raw = self.bytes(n.checked_mul(8).ok_or(PersistError::Truncated)?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    pub(crate) fn finish(&self) -> Result<(), PersistError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PersistError::Corrupt("trailing bytes"))
        }
    }
}

/// Parsed container header: which codec owns the payload and the envelope
/// version it was written with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainerHeader {
    /// Registry id of the payload codec (e.g. `"habf"`, `"bloom"`).
    pub id: String,
    /// Container (envelope) format version.
    pub version: u8,
}

/// Appends a self-describing container — header naming `id`, then the
/// length-framed `payload` — to `out`.
///
/// # Panics
/// Panics if `id` is empty, longer than 64 bytes, or not ASCII (registry
/// ids are short ASCII slugs by construction).
pub fn encode_container(id: &str, payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        !id.is_empty() && id.len() <= MAX_ID_LEN && id.is_ascii(),
        "filter id must be 1..=64 ASCII bytes"
    );
    out.reserve(14 + id.len() + payload.len());
    out.extend_from_slice(CONTAINER_MAGIC);
    out.push(CONTAINER_VERSION);
    out.push(id.len() as u8);
    out.extend_from_slice(id.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Splits a container image into its header and payload bytes.
///
/// # Errors
/// Returns [`PersistError::BadMagic`] when the buffer is not a container,
/// [`PersistError::BadVersion`] on an unknown envelope version, and
/// [`PersistError::Truncated`] / [`PersistError::Corrupt`] on any length
/// inconsistency. The payload is *not* validated here — that is the
/// codec's job.
pub fn decode_container(buf: &[u8]) -> Result<(ContainerHeader, &[u8]), PersistError> {
    let mut r = Reader::new(buf);
    if r.bytes(4)? != CONTAINER_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u8()?;
    if version != CONTAINER_VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let id_len = usize::from(r.u8()?);
    if id_len == 0 || id_len > MAX_ID_LEN {
        return Err(PersistError::Corrupt("filter id length out of range"));
    }
    let id_bytes = r.bytes(id_len)?;
    let id = std::str::from_utf8(id_bytes)
        .map_err(|_| PersistError::Corrupt("filter id is not ASCII"))?;
    if !id.is_ascii() {
        return Err(PersistError::Corrupt("filter id is not ASCII"));
    }
    let payload_len = r.u64()?;
    let payload_len = usize::try_from(payload_len).map_err(|_| PersistError::Truncated)?;
    let payload = r.bytes(payload_len)?;
    r.finish()?;
    Ok((
        ContainerHeader {
            id: id.to_string(),
            version,
        },
        payload,
    ))
}

pub(crate) struct Image<'a> {
    pub kind: u8,
    pub k: usize,
    pub cell_bits: u32,
    pub h0: Vec<HashId>,
    pub family: usize,
    pub sim_seed: u64,
    pub bloom: &'a BitVec,
    pub he: &'a HashExpressor,
}

pub(crate) fn encode(img: &Image<'_>) -> Vec<u8> {
    let bloom_words = img.bloom.words();
    let cell_words = img.he.cells().words();
    let mut out =
        Vec::with_capacity(32 + img.h0.len() + 8 * (bloom_words.len() + cell_words.len()));
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(img.kind);
    out.push(img.k as u8);
    out.push(img.cell_bits as u8);
    out.push(img.h0.len() as u8);
    out.extend_from_slice(&img.h0);
    out.extend_from_slice(&(img.family as u64).to_le_bytes());
    out.extend_from_slice(&img.sim_seed.to_le_bytes());
    out.extend_from_slice(&(img.bloom.len() as u64).to_le_bytes());
    for w in bloom_words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&(img.he.omega() as u64).to_le_bytes());
    out.extend_from_slice(&(img.he.inserted() as u64).to_le_bytes());
    for w in cell_words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

pub(crate) struct Decoded {
    pub h0: Vec<HashId>,
    pub family: usize,
    pub sim_seed: u64,
    pub bloom: BitVec,
    pub he: HashExpressor,
}

pub(crate) fn decode(buf: &[u8], expect_kind: u8) -> Result<Decoded, PersistError> {
    let mut r = Reader::new(buf);
    if r.bytes(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let kind = r.u8()?;
    if kind != expect_kind {
        return Err(PersistError::WrongKind);
    }
    let k = usize::from(r.u8()?);
    let cell_bits = u32::from(r.u8()?);
    if k == 0 || k > crate::MAX_K {
        return Err(PersistError::Corrupt("k out of range"));
    }
    if !(2..=16).contains(&cell_bits) {
        return Err(PersistError::Corrupt("cell width out of range"));
    }
    let h0_len = usize::from(r.u8()?);
    if h0_len != k {
        return Err(PersistError::Corrupt("H0 length differs from k"));
    }
    let h0: Vec<HashId> = r.bytes(h0_len)?.to_vec();
    let family = r.u64()? as usize;
    let max_id = (1usize << (cell_bits - 1)) - 1;
    if family == 0 || family > max_id {
        return Err(PersistError::Corrupt("family size out of id space"));
    }
    if h0.iter().any(|&id| id == 0 || usize::from(id) > family) {
        return Err(PersistError::Corrupt("H0 id out of family"));
    }
    let sim_seed = r.u64()?;
    let m = r.u64()? as usize;
    if m == 0 {
        return Err(PersistError::Corrupt("empty Bloom array"));
    }
    let bloom = BitVec::from_words(r.words(m.div_ceil(64))?, m);
    let omega = r.u64()? as usize;
    if omega == 0 {
        return Err(PersistError::Corrupt("empty HashExpressor"));
    }
    let inserted = r.u64()? as usize;
    // Checked: a corrupt omega near usize::MAX must error, not overflow.
    let cell_word_count = omega
        .checked_mul(cell_bits as usize)
        .ok_or(PersistError::Truncated)?
        .div_ceil(64);
    let cells = PackedCells::from_words(r.words(cell_word_count)?, omega, cell_bits);
    r.finish()?;
    let _ = kind;
    Ok(Decoded {
        h0,
        family,
        sim_seed,
        bloom,
        he: HashExpressor::from_parts(cells, k, inserted),
    })
}

/// Encodes the sharded container image: a header naming the splitter,
/// followed by length-framed per-shard blobs (each a complete [`encode`]
/// image).
///
/// ```text
/// magic "HABS" | version u8 | kind u8 (0 = HABF, 1 = f-HABF)
/// shards u32 | splitter_seed u64 | built_keys u64 | inserted u64
/// per shard: blob_len u64 | blob bytes…
/// ```
pub(crate) fn encode_sharded(
    kind: u8,
    splitter_seed: u64,
    built_keys: u64,
    inserted: u64,
    blobs: &[Vec<u8>],
) -> Vec<u8> {
    let payload: usize = blobs.iter().map(|b| 8 + b.len()).sum();
    let mut out = Vec::with_capacity(34 + payload);
    out.extend_from_slice(SHARDED_MAGIC);
    out.push(SHARDED_VERSION);
    out.push(kind);
    out.extend_from_slice(&(blobs.len() as u32).to_le_bytes());
    out.extend_from_slice(&splitter_seed.to_le_bytes());
    out.extend_from_slice(&built_keys.to_le_bytes());
    out.extend_from_slice(&inserted.to_le_bytes());
    for blob in blobs {
        out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        out.extend_from_slice(blob);
    }
    out
}

pub(crate) struct ShardedDecoded<'a> {
    pub splitter_seed: u64,
    pub built_keys: u64,
    pub inserted: u64,
    pub blobs: Vec<&'a [u8]>,
}

pub(crate) fn decode_sharded(
    buf: &[u8],
    expect_kind: u8,
) -> Result<ShardedDecoded<'_>, PersistError> {
    let mut r = Reader::new(buf);
    if r.bytes(4)? != SHARDED_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u8()?;
    if version != SHARDED_VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let kind = r.u8()?;
    if kind != expect_kind {
        return Err(PersistError::WrongKind);
    }
    let shards = u32::from_le_bytes(r.bytes(4)?.try_into().expect("4 bytes")) as usize;
    if shards == 0 || shards > MAX_SHARDS {
        return Err(PersistError::Corrupt("shard count out of range"));
    }
    let splitter_seed = r.u64()?;
    let built_keys = r.u64()?;
    let inserted = r.u64()?;
    let mut blobs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let len = r.u64()?;
        let len = usize::try_from(len).map_err(|_| PersistError::Truncated)?;
        blobs.push(r.bytes(len)?);
    }
    r.finish()?;
    Ok(ShardedDecoded {
        splitter_seed,
        built_keys,
        inserted,
        blobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::habf::{FHabf, Habf, HabfConfig};
    use habf_filters::Filter;

    type Workload = (Vec<Vec<u8>>, Vec<(Vec<u8>, f64)>);

    fn sample() -> Workload {
        let pos: Vec<Vec<u8>> = (0..2_000)
            .map(|i| format!("pos:{i}").into_bytes())
            .collect();
        let neg: Vec<(Vec<u8>, f64)> = (0..2_000)
            .map(|i| (format!("neg:{i}").into_bytes(), 1.0 + (i % 9) as f64))
            .collect();
        (pos, neg)
    }

    #[test]
    fn habf_roundtrip_preserves_every_answer() {
        let (pos, neg) = sample();
        let original = Habf::build(&pos, &neg, &HabfConfig::with_total_bits(2_000 * 10));
        let bytes = original.to_bytes();
        let restored = Habf::from_bytes(&bytes).expect("roundtrip");
        for k in &pos {
            assert!(restored.contains(k));
        }
        for (k, _) in &neg {
            assert_eq!(original.contains(k), restored.contains(k));
        }
        assert_eq!(original.space_bits(), restored.space_bits());
    }

    #[test]
    fn fhabf_roundtrip_preserves_every_answer() {
        let (pos, neg) = sample();
        let original = FHabf::build(&pos, &neg, &HabfConfig::with_total_bits(2_000 * 10));
        let bytes = original.to_bytes();
        let restored = FHabf::from_bytes(&bytes).expect("roundtrip");
        for k in &pos {
            assert!(restored.contains(k));
        }
        for (k, _) in &neg {
            assert_eq!(original.contains(k), restored.contains(k));
        }
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let (pos, neg) = sample();
        let habf = Habf::build(&pos, &neg, &HabfConfig::with_total_bits(2_000 * 8));
        assert!(matches!(
            FHabf::from_bytes(&habf.to_bytes()),
            Err(PersistError::WrongKind)
        ));
        let fhabf = FHabf::build(&pos, &neg, &HabfConfig::with_total_bits(2_000 * 8));
        assert!(matches!(
            Habf::from_bytes(&fhabf.to_bytes()),
            Err(PersistError::WrongKind)
        ));
    }

    #[test]
    fn corrupted_images_error_not_panic() {
        let (pos, neg) = sample();
        let habf = Habf::build(&pos, &neg, &HabfConfig::with_total_bits(2_000 * 8));
        let bytes = habf.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Habf::from_bytes(&bad),
            Err(PersistError::BadMagic)
        ));
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            Habf::from_bytes(&bad),
            Err(PersistError::BadVersion(99))
        ));
        // Truncations at every prefix must error, never panic.
        for cut in [0usize, 3, 5, 8, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(Habf::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            Habf::from_bytes(&bad),
            Err(PersistError::Corrupt(_))
        ));
    }
}
