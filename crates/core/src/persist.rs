//! Persistence: serialize built filters to compact binary formats and
//! load them back.
//!
//! The intended deployment (and the paper's setting) builds filters
//! *offline*, where the negative keys and costs are collected, and ships
//! them to query servers. The formats:
//!
//! The **`HABC` v2 container** is the current, self-describing envelope
//! every [`crate::DynFilter`] writes through [`crate::DynFilter::write_to`]
//! and the [`crate::registry`] loads. Its payload separates small scalar
//! *metadata* from the bulk `u64` **word frames**, and pads so every frame
//! starts at a file offset that is a multiple of 8:
//!
//! ```text
//! magic "HABC" | version u8 (2) | id_len u8 | filter-id bytes (ASCII)
//! payload_len u64 | zero pad to the next 8-byte boundary
//! payload:
//!   meta_len u64 | meta bytes… | zero pad to 8
//!   nframes u64 | frame table: nframes × (offset u64, words u64)
//!   word frames, little-endian u64s, each at its (8-aligned) offset
//! ```
//!
//! Because the header pad puts the payload — and therefore every frame —
//! on an 8-byte boundary, [`crate::registry::load_shared`] /
//! [`crate::registry::load_mmap`] can hand back filters whose bit arrays
//! and cell tables are *views* into the image (zero payload-word copies),
//! served in place and promoted to owned words only when first mutated.
//! Frame offsets are validated on load: a non-multiple-of-8 offset is the
//! typed [`PersistError::Misaligned`].
//!
//! The **`HABC` v1 container** is the previous envelope (same header, no
//! alignment pad, one opaque payload blob):
//!
//! ```text
//! magic "HABC" | version u8 (1) | id_len u8 | filter-id bytes (ASCII)
//! payload_len u64 | payload bytes…
//! ```
//!
//! v1 images keep loading byte-for-byte through the per-id copying
//! codecs; only newly written images use v2.
//!
//! The filter id names the payload codec in the registry, so any
//! registered filter — HABF family or baseline — round-trips through one
//! format, and loaders reject unknown ids with a typed error instead of
//! misparsing the payload.
//!
//! The **legacy `HABF` image** (unsharded HABF / f-HABF) doubles as the
//! container payload for those ids, so pre-container images remain
//! loadable byte-for-byte:
//!
//! ```text
//! magic "HABF" | version u8 | kind u8 (0 = HABF, 1 = f-HABF)
//! k u8 | cell_bits u8 | h0_len u8 | h0 bytes…
//! family u64 (member count, or simulated size)
//! sim_seed u64 (f-HABF only; 0 otherwise)
//! m u64 | bloom words…
//! omega u64 | inserted u64 | cell words…
//! ```
//!
//! The **legacy `HABS` image** frames per-shard `HABF` blobs the same way
//! and likewise doubles as the sharded ids' container payload.
//!
//! Hash-function ids are stable across versions (pinned by the golden
//! vectors in `habf-hashing`), so a persisted HashExpressor chain decodes
//! to the same functions forever. The entry points are
//! [`crate::Habf::to_bytes`] / [`crate::Habf::from_bytes`] and their
//! [`crate::FHabf`] counterparts (legacy images), and
//! [`crate::registry::load`] (any format).

use crate::hash_expressor::HashExpressor;
use habf_hashing::HashId;
use habf_util::{BitVec, ImageBytes, PackedCells, SharedWords, Words};
use std::sync::Arc;

pub(crate) const MAGIC: &[u8; 4] = b"HABF";
const VERSION: u8 = 1;

/// Magic for the sharded container format framing per-shard blobs.
pub(crate) const SHARDED_MAGIC: &[u8; 4] = b"HABS";
const SHARDED_VERSION: u8 = 1;

/// Magic of the self-describing container format.
pub(crate) const CONTAINER_MAGIC: &[u8; 4] = b"HABC";

/// Current container version: aligned word frames, zero-copy loadable.
pub const CONTAINER_VERSION: u8 = 2;

/// The previous container version (opaque unaligned payload). Still
/// readable; [`crate::DynFilter::to_container_bytes_v1`] still writes it
/// for compatibility tooling.
pub const CONTAINER_VERSION_V1: u8 = 1;

/// Longest filter id the container header can name.
const MAX_ID_LEN: usize = 64;

/// Upper bound on the persisted shard count; rejects corrupt headers
/// before any per-shard allocation happens.
pub(crate) const MAX_SHARDS: usize = 65_536;

/// Upper bound on a v2 frame table (two frames per shard plus slack);
/// rejects corrupt headers before the table allocation is sized.
const MAX_FRAMES: usize = 2 * MAX_SHARDS + 8;

/// Errors loading a persisted filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer does not start with a known magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// The kind byte does not match the requested filter type.
    WrongKind,
    /// The container names a filter id absent from the
    /// [`crate::registry`].
    UnknownFilterId(String),
    /// The buffer ended early or a length field is inconsistent.
    Truncated,
    /// A v2 word frame sits at an offset that is not a multiple of 8 —
    /// it could never be served as an in-place `u64` view.
    Misaligned,
    /// A field value is out of its legal range.
    Corrupt(&'static str),
}

impl core::fmt::Display for PersistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a HABF filter image"),
            PersistError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::WrongKind => write!(f, "filter kind mismatch"),
            PersistError::UnknownFilterId(id) => {
                write!(f, "container names unregistered filter id {id:?}")
            }
            PersistError::Truncated => write!(f, "truncated filter image"),
            PersistError::Misaligned => {
                write!(f, "misaligned word frame in filter image")
            }
            PersistError::Corrupt(what) => write!(f, "corrupt filter image: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Fills an `N`-byte array from the front of `bytes` without a panicking
/// conversion. Callers pass slices already length-checked by [`Reader`];
/// a short slice zero-fills rather than aborting the process.
pub(crate) fn le_array<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    for (dst, src) in out.iter_mut().zip(bytes) {
        *dst = *src;
    }
    out
}

/// Copies little-endian words out of a byte run (the non-zero-copy decode
/// path).
fn copy_words(raw: &[u8]) -> Vec<u64> {
    raw.chunks_exact(8)
        .map(|c| u64::from_le_bytes(le_array(c)))
        .collect()
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        let out = self.buf.get(self.pos..end).ok_or(PersistError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PersistError> {
        self.bytes(1)?
            .first()
            .copied()
            .ok_or(PersistError::Truncated)
    }

    pub(crate) fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(le_array(self.bytes(2)?)))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(le_array(self.bytes(4)?)))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(le_array(self.bytes(8)?)))
    }

    /// A `u64` count/size field narrowed to `usize`. A value the host
    /// cannot address is a truncation-class error, never a silent wrap.
    pub(crate) fn count(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.u64()?).map_err(|_| PersistError::Truncated)
    }

    pub(crate) fn words(&mut self, n: usize) -> Result<Vec<u64>, PersistError> {
        let raw = self.bytes(n.checked_mul(8).ok_or(PersistError::Truncated)?)?;
        Ok(copy_words(raw))
    }

    pub(crate) fn finish(&self) -> Result<(), PersistError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PersistError::Corrupt("trailing bytes"))
        }
    }
}

/// Parsed container header: which codec owns the payload and the envelope
/// version it was written with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainerHeader {
    /// Registry id of the payload codec (e.g. `"habf"`, `"bloom"`).
    pub id: String,
    /// Container (envelope) format version.
    pub version: u8,
}

/// A decoded container envelope: the header, the payload bytes, and where
/// the payload starts inside the image (v2 guarantees that offset — and
/// every frame offset within the payload — is a multiple of 8, which is
/// what makes in-place word views possible).
#[derive(Clone, Debug)]
pub struct DecodedContainer<'a> {
    /// Which codec owns the payload, and the envelope version.
    pub header: ContainerHeader,
    /// The payload bytes.
    pub payload: &'a [u8],
    /// Byte offset of the payload within the container image.
    pub payload_offset: usize,
}

/// Appends a **v1** self-describing container — header naming `id`, then
/// the length-framed opaque `payload` — to `out`. New images should go
/// through [`crate::DynFilter::write_to`] (v2); this writer exists for
/// compatibility tooling and tests.
///
/// # Panics
/// Panics if `id` is empty, longer than 64 bytes, or not ASCII (registry
/// ids are short ASCII slugs by construction).
pub fn encode_container(id: &str, payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        !id.is_empty() && id.len() <= MAX_ID_LEN && id.is_ascii(),
        "filter id must be 1..=64 ASCII bytes"
    );
    out.reserve(14 + id.len() + payload.len());
    out.extend_from_slice(CONTAINER_MAGIC);
    out.push(CONTAINER_VERSION_V1);
    out.push(id.len() as u8);
    out.extend_from_slice(id.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Collects a codec's v2 payload: a small metadata blob plus the borrowed
/// `u64` word frames, which [`encode_container_v2`] lays out with 8-byte
/// alignment. Filled in by [`crate::DynFilter::write_payload_v2`].
#[derive(Default)]
pub struct FrameWriter<'a> {
    meta: Vec<u8>,
    frames: Vec<&'a [u64]>,
}

impl<'a> FrameWriter<'a> {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The metadata blob (scalars, ids, seeds — everything that is not
    /// bulk words). Codecs append to it directly.
    pub fn meta(&mut self) -> &mut Vec<u8> {
        &mut self.meta
    }

    /// Registers a word frame. Frames are laid out in registration order,
    /// each starting on an 8-byte boundary of the final image.
    pub fn frame(&mut self, words: &'a [u64]) {
        self.frames.push(words);
    }
}

/// One entry of a v2 frame table: where a word frame sits inside the
/// payload and how many `u64` words it spans. Surfaced by
/// [`frame_table`] so `habf inspect` can print the layout for operators
/// to verify alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameEntry {
    /// Byte offset of the frame relative to the payload start (always a
    /// multiple of 8 in a well-formed image).
    pub offset: usize,
    /// Frame length in `u64` words.
    pub words: usize,
}

/// Appends a **v2** container for `id` with the metadata and word frames
/// collected in `fw`, padding so the payload and every frame start on an
/// 8-byte boundary of the image.
///
/// # Panics
/// Panics on an invalid id (see [`encode_container`]) or more than
/// `MAX_FRAMES` frames (unreachable for registered codecs).
pub fn encode_container_v2(id: &str, fw: &FrameWriter<'_>, out: &mut Vec<u8>) {
    assert!(
        !id.is_empty() && id.len() <= MAX_ID_LEN && id.is_ascii(),
        "filter id must be 1..=64 ASCII bytes"
    );
    assert!(fw.frames.len() <= MAX_FRAMES, "frame table overflow");
    // Payload layout (all offsets relative to the payload start, which the
    // header pad places on an 8-byte boundary of the image).
    let meta_end = 8 + fw.meta.len();
    let table_off = meta_end.next_multiple_of(8);
    let mut cursor = table_off + 8 + 16 * fw.frames.len();
    debug_assert_eq!(cursor % 8, 0);
    let entries: Vec<(u64, u64)> = fw
        .frames
        .iter()
        .map(|f| {
            let e = (cursor as u64, f.len() as u64);
            cursor += f.len() * 8;
            e
        })
        .collect();
    let payload_len = cursor;

    let header_len = 14 + id.len();
    let header_pad = header_len.next_multiple_of(8) - header_len;
    out.reserve(header_len + header_pad + payload_len);
    out.extend_from_slice(CONTAINER_MAGIC);
    out.push(CONTAINER_VERSION);
    out.push(id.len() as u8);
    out.extend_from_slice(id.as_bytes());
    out.extend_from_slice(&(payload_len as u64).to_le_bytes());
    out.extend_from_slice(&[0u8; 8][..header_pad]);

    let payload_start = out.len();
    out.extend_from_slice(&(fw.meta.len() as u64).to_le_bytes());
    out.extend_from_slice(&fw.meta);
    out.extend_from_slice(&[0u8; 8][..table_off - meta_end]);
    out.extend_from_slice(&(fw.frames.len() as u64).to_le_bytes());
    for (off, words) in &entries {
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&words.to_le_bytes());
    }
    for frame in &fw.frames {
        for w in *frame {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    debug_assert_eq!(out.len() - payload_start, payload_len);
    debug_assert_eq!(payload_start % 8, 0);
}

/// Splits a container image (v1 or v2) into its header and payload bytes.
///
/// # Errors
/// Returns [`PersistError::BadMagic`] when the buffer is not a container,
/// [`PersistError::BadVersion`] on an unknown envelope version, and
/// [`PersistError::Truncated`] / [`PersistError::Corrupt`] on any length
/// inconsistency. The payload is *not* validated here — that is the
/// codec's job (for v2, [`parse_v2_payload`]).
pub fn decode_container(buf: &[u8]) -> Result<DecodedContainer<'_>, PersistError> {
    let mut r = Reader::new(buf);
    if r.bytes(4)? != CONTAINER_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u8()?;
    if version != CONTAINER_VERSION && version != CONTAINER_VERSION_V1 {
        return Err(PersistError::BadVersion(version));
    }
    let id_len = usize::from(r.u8()?);
    if id_len == 0 || id_len > MAX_ID_LEN {
        return Err(PersistError::Corrupt("filter id length out of range"));
    }
    let id_bytes = r.bytes(id_len)?;
    let id = std::str::from_utf8(id_bytes)
        .map_err(|_| PersistError::Corrupt("filter id is not ASCII"))?;
    if !id.is_ascii() {
        return Err(PersistError::Corrupt("filter id is not ASCII"));
    }
    let payload_len = r.u64()?;
    let payload_len = usize::try_from(payload_len).map_err(|_| PersistError::Truncated)?;
    if version == CONTAINER_VERSION {
        // The v2 header pads to the next 8-byte boundary so the payload
        // (and every frame in it) lands word-aligned in the image.
        // `-len mod 8` is the distance to that boundary.
        let header_len = 14usize.saturating_add(id_len);
        let pad = header_len.wrapping_neg() & 7;
        if r.bytes(pad)?.iter().any(|&b| b != 0) {
            return Err(PersistError::Corrupt("header padding must be zero"));
        }
    }
    let payload_offset = r.pos;
    let payload = r.bytes(payload_len)?;
    r.finish()?;
    Ok(DecodedContainer {
        header: ContainerHeader {
            id: id.to_string(),
            version,
        },
        payload,
        payload_offset,
    })
}

/// Parses a v2 payload into its metadata blob and validated frame table.
///
/// # Errors
/// [`PersistError::Misaligned`] for a frame offset that is not a multiple
/// of 8, [`PersistError::Truncated`] / [`PersistError::Corrupt`] for any
/// other inconsistency (non-contiguous frames, trailing bytes, oversized
/// table).
pub fn parse_v2_payload(payload: &[u8]) -> Result<(&[u8], Vec<FrameEntry>), PersistError> {
    let mut r = Reader::new(payload);
    let meta_len = usize::try_from(r.u64()?).map_err(|_| PersistError::Truncated)?;
    let meta = r.bytes(meta_len)?;
    // `-len mod 8` is the distance to the next 8-byte boundary.
    let meta_end = 8usize.saturating_add(meta_len);
    let pad = meta_end.wrapping_neg() & 7;
    if r.bytes(pad)?.iter().any(|&b| b != 0) {
        return Err(PersistError::Corrupt("meta padding must be zero"));
    }
    let nframes = usize::try_from(r.u64()?).map_err(|_| PersistError::Truncated)?;
    if nframes > MAX_FRAMES {
        return Err(PersistError::Corrupt("frame count out of range"));
    }
    let table_end = meta_end
        .checked_add(pad)
        .and_then(|v| v.checked_add(8))
        .and_then(|v| v.checked_add(nframes.checked_mul(16)?))
        .ok_or(PersistError::Truncated)?;
    let mut entries = Vec::with_capacity(nframes);
    let mut prev_end = table_end;
    for _ in 0..nframes {
        let offset = usize::try_from(r.u64()?).map_err(|_| PersistError::Truncated)?;
        let words = usize::try_from(r.u64()?).map_err(|_| PersistError::Truncated)?;
        if offset % 8 != 0 {
            return Err(PersistError::Misaligned);
        }
        let end = offset
            .checked_add(words.checked_mul(8).ok_or(PersistError::Truncated)?)
            .ok_or(PersistError::Truncated)?;
        // Frames are contiguous from the table end — encodings are
        // canonical, so two distinct byte images can never decode to the
        // same filter (a gap would be unvalidated smuggled bytes; an
        // overlap would alias frames).
        if offset != prev_end {
            return Err(PersistError::Corrupt("word frames must be contiguous"));
        }
        if end > payload.len() {
            return Err(PersistError::Truncated);
        }
        prev_end = end;
        entries.push(FrameEntry { offset, words });
    }
    if prev_end != payload.len() {
        return Err(PersistError::Corrupt("trailing payload bytes"));
    }
    Ok((meta, entries))
}

/// The v2 frame table of a container image, with the payload's byte
/// offset inside the image — `None` for v1 containers and the legacy
/// formats (which have no frame table). `habf inspect` prints this so
/// operators can verify every frame is 8-aligned.
///
/// # Errors
/// Propagates header/payload validation errors for container inputs.
pub fn frame_table(buf: &[u8]) -> Result<Option<(usize, Vec<FrameEntry>)>, PersistError> {
    if buf.len() < 5 || buf.get(..4).is_none_or(|magic| magic != CONTAINER_MAGIC) {
        return Ok(None);
    }
    let decoded = decode_container(buf)?;
    if decoded.header.version != CONTAINER_VERSION {
        return Ok(None);
    }
    let (_, entries) = parse_v2_payload(decoded.payload)?;
    Ok(Some((decoded.payload_offset, entries)))
}

/// Hands a v2 payload's word frames to a codec, either **copying** them
/// out of a borrowed buffer or handing back **zero-copy views** into a
/// shared [`ImageBytes`] (the [`crate::registry::load_shared`] /
/// [`crate::registry::load_mmap`] path). Codecs call
/// [`FrameSource::next_words`] once per frame, in frame order, with the
/// word count their metadata implies — a mismatch is a typed error, so a
/// corrupt header can never mis-slice the image.
pub struct FrameSource<'a> {
    entries: Vec<FrameEntry>,
    next: usize,
    backing: FrameBacking<'a>,
}

/// The checked byte range `[start, start + words * 8)` of a frame within
/// `buf` — bounds- and overflow-validated so a hostile frame table can
/// never mis-slice.
fn frame_range(buf: &[u8], start: usize, words: usize) -> Result<&[u8], PersistError> {
    let len = words.checked_mul(8).ok_or(PersistError::Truncated)?;
    let end = start.checked_add(len).ok_or(PersistError::Truncated)?;
    buf.get(start..end).ok_or(PersistError::Truncated)
}

enum FrameBacking<'a> {
    /// Decode by copying from a borrowed payload (the plain
    /// [`crate::registry::load`] path).
    Borrowed { payload: &'a [u8] },
    /// Serve views into a shared image; `payload_offset` locates the
    /// payload inside it.
    Shared {
        image: Arc<ImageBytes>,
        payload_offset: usize,
    },
}

impl<'a> FrameSource<'a> {
    pub(crate) fn borrowed(payload: &'a [u8], entries: Vec<FrameEntry>) -> Self {
        Self {
            entries,
            next: 0,
            backing: FrameBacking::Borrowed { payload },
        }
    }

    pub(crate) fn shared(
        image: Arc<ImageBytes>,
        payload_offset: usize,
        entries: Vec<FrameEntry>,
    ) -> Self {
        Self {
            entries,
            next: 0,
            backing: FrameBacking::Shared {
                image,
                payload_offset,
            },
        }
    }

    /// Takes the next frame as a word store, validating it spans exactly
    /// `expect_words` words.
    ///
    /// # Errors
    /// [`PersistError::Corrupt`] on a missing frame or a word-count
    /// mismatch; [`PersistError::Misaligned`] when a shared view cannot
    /// be placed on an 8-byte boundary.
    pub fn next_words(&mut self, expect_words: usize) -> Result<Words, PersistError> {
        let entry = *self
            .entries
            .get(self.next)
            .ok_or(PersistError::Corrupt("missing word frame"))?;
        self.next = self.next.saturating_add(1);
        if entry.words != expect_words {
            return Err(PersistError::Corrupt("frame size mismatch"));
        }
        match &self.backing {
            FrameBacking::Borrowed { payload } => {
                let raw = frame_range(payload, entry.offset, entry.words)?;
                Ok(Words::from(copy_words(raw)))
            }
            FrameBacking::Shared {
                image,
                payload_offset,
            } => {
                let byte_off = payload_offset
                    .checked_add(entry.offset)
                    .ok_or(PersistError::Truncated)?;
                if cfg!(target_endian = "little") {
                    SharedWords::new(Arc::clone(image), byte_off, entry.words)
                        .map(Words::from)
                        .ok_or(PersistError::Misaligned)
                } else {
                    // Big-endian hosts cannot view LE words in place; fall
                    // back to the copying decode.
                    let raw = frame_range(image.as_bytes(), byte_off, entry.words)?;
                    Ok(Words::from(copy_words(raw)))
                }
            }
        }
    }

    /// Asserts every frame was consumed — a codec that reads fewer frames
    /// than the table holds silently ignored image bytes.
    ///
    /// # Errors
    /// [`PersistError::Corrupt`] when frames remain.
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.next == self.entries.len() {
            Ok(())
        } else {
            Err(PersistError::Corrupt("unconsumed word frames"))
        }
    }
}

pub(crate) struct Image<'a> {
    pub kind: u8,
    pub k: usize,
    pub cell_bits: u32,
    pub h0: Vec<HashId>,
    pub family: usize,
    pub sim_seed: u64,
    pub bloom: &'a BitVec,
    pub he: &'a HashExpressor,
}

pub(crate) fn encode(img: &Image<'_>) -> Vec<u8> {
    let bloom_words = img.bloom.words();
    let cell_words = img.he.cells().words();
    let mut out =
        Vec::with_capacity(32 + img.h0.len() + 8 * (bloom_words.len() + cell_words.len()));
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(img.kind);
    out.push(img.k as u8);
    out.push(img.cell_bits as u8);
    out.push(img.h0.len() as u8);
    out.extend_from_slice(&img.h0);
    out.extend_from_slice(&(img.family as u64).to_le_bytes());
    out.extend_from_slice(&img.sim_seed.to_le_bytes());
    out.extend_from_slice(&(img.bloom.len() as u64).to_le_bytes());
    for w in bloom_words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&(img.he.omega() as u64).to_le_bytes());
    out.extend_from_slice(&(img.he.inserted() as u64).to_le_bytes());
    for w in cell_words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

pub(crate) struct Decoded {
    pub h0: Vec<HashId>,
    pub family: usize,
    pub sim_seed: u64,
    pub bloom: BitVec,
    pub he: HashExpressor,
}

/// Crate-internal hooks the sharded v2 codec needs from its shard type:
/// expose the persist image for writing, rebuild from a decode. Bounds on
/// registry impls only — sealed to `Habf` / `FHabf` by visibility.
pub(crate) trait V2Shard: Sized {
    fn v2_image(&self) -> Image<'_>;
    fn from_decoded(d: Decoded) -> Self;
}

/// Writes the v2 metadata block of one HABF-family image (everything the
/// legacy format stores *except* the bulk words, which go into frames):
///
/// ```text
/// kind u8 | k u8 | cell_bits u8 | h0_len u8 | h0 bytes…
/// family u64 | sim_seed u64 | m u64 | omega u64 | inserted u64
/// ```
pub(crate) fn encode_v2_meta(img: &Image<'_>, out: &mut Vec<u8>) {
    out.push(img.kind);
    out.push(img.k as u8);
    out.push(img.cell_bits as u8);
    out.push(img.h0.len() as u8);
    out.extend_from_slice(&img.h0);
    out.extend_from_slice(&(img.family as u64).to_le_bytes());
    out.extend_from_slice(&img.sim_seed.to_le_bytes());
    out.extend_from_slice(&(img.bloom.len() as u64).to_le_bytes());
    out.extend_from_slice(&(img.he.omega() as u64).to_le_bytes());
    out.extend_from_slice(&(img.he.inserted() as u64).to_le_bytes());
}

/// Registers the two word frames of one HABF-family image (bloom bits,
/// then expressor cells) in write order.
pub(crate) fn push_v2_frames<'a>(img: &Image<'a>, fw: &mut FrameWriter<'a>) {
    fw.frame(img.bloom.words());
    fw.frame(img.he.cells().words());
}

/// Decodes one HABF-family v2 metadata block (written by
/// [`encode_v2_meta`]) and pulls its two word frames from `frames`,
/// applying the same range validation as the legacy [`decode`].
pub(crate) fn decode_v2_meta(
    r: &mut Reader<'_>,
    expect_kind: u8,
    frames: &mut FrameSource<'_>,
) -> Result<Decoded, PersistError> {
    let kind = r.u8()?;
    if kind != expect_kind {
        return Err(PersistError::WrongKind);
    }
    let k = usize::from(r.u8()?);
    let cell_bits = u32::from(r.u8()?);
    if k == 0 || k > crate::MAX_K {
        return Err(PersistError::Corrupt("k out of range"));
    }
    if !(2..=16).contains(&cell_bits) {
        return Err(PersistError::Corrupt("cell width out of range"));
    }
    let h0_len = usize::from(r.u8()?);
    if h0_len != k {
        return Err(PersistError::Corrupt("H0 length differs from k"));
    }
    let h0: Vec<HashId> = r.bytes(h0_len)?.to_vec();
    let family = r.count()?;
    // cell_bits ∈ 2..=16 (checked above); `checked_shl` keeps a corrupt
    // width from wrapping the id-space bound.
    let max_id = 1usize
        .checked_shl(cell_bits.saturating_sub(1))
        .and_then(|v| v.checked_sub(1))
        .ok_or(PersistError::Corrupt("cell width out of range"))?;
    if family == 0 || family > max_id {
        return Err(PersistError::Corrupt("family size out of id space"));
    }
    if h0.iter().any(|&id| id == 0 || usize::from(id) > family) {
        return Err(PersistError::Corrupt("H0 id out of family"));
    }
    let sim_seed = r.u64()?;
    let m = r.count()?;
    if m == 0 {
        return Err(PersistError::Corrupt("empty Bloom array"));
    }
    let omega = r.count()?;
    if omega == 0 {
        return Err(PersistError::Corrupt("empty HashExpressor"));
    }
    let inserted = r.count()?;
    let bloom_words = frames.next_words(m.div_ceil(64))?;
    let bloom = BitVec::from_store(bloom_words, m);
    // Checked: a corrupt omega near usize::MAX must error, not overflow.
    let cell_word_count = omega
        .checked_mul(usize::try_from(cell_bits).unwrap_or(usize::MAX))
        .ok_or(PersistError::Truncated)?
        .div_ceil(64);
    let cell_words = frames.next_words(cell_word_count)?;
    let cells = PackedCells::from_store(cell_words, omega, cell_bits);
    Ok(Decoded {
        h0,
        family,
        sim_seed,
        bloom,
        he: HashExpressor::from_parts(cells, k, inserted),
    })
}

pub(crate) fn decode(buf: &[u8], expect_kind: u8) -> Result<Decoded, PersistError> {
    let mut r = Reader::new(buf);
    if r.bytes(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let kind = r.u8()?;
    if kind != expect_kind {
        return Err(PersistError::WrongKind);
    }
    let k = usize::from(r.u8()?);
    let cell_bits = u32::from(r.u8()?);
    if k == 0 || k > crate::MAX_K {
        return Err(PersistError::Corrupt("k out of range"));
    }
    if !(2..=16).contains(&cell_bits) {
        return Err(PersistError::Corrupt("cell width out of range"));
    }
    let h0_len = usize::from(r.u8()?);
    if h0_len != k {
        return Err(PersistError::Corrupt("H0 length differs from k"));
    }
    let h0: Vec<HashId> = r.bytes(h0_len)?.to_vec();
    let family = r.count()?;
    // cell_bits ∈ 2..=16 (checked above); `checked_shl` keeps a corrupt
    // width from wrapping the id-space bound.
    let max_id = 1usize
        .checked_shl(cell_bits.saturating_sub(1))
        .and_then(|v| v.checked_sub(1))
        .ok_or(PersistError::Corrupt("cell width out of range"))?;
    if family == 0 || family > max_id {
        return Err(PersistError::Corrupt("family size out of id space"));
    }
    if h0.iter().any(|&id| id == 0 || usize::from(id) > family) {
        return Err(PersistError::Corrupt("H0 id out of family"));
    }
    let sim_seed = r.u64()?;
    let m = r.count()?;
    if m == 0 {
        return Err(PersistError::Corrupt("empty Bloom array"));
    }
    let bloom = BitVec::from_words(r.words(m.div_ceil(64))?, m);
    let omega = r.count()?;
    if omega == 0 {
        return Err(PersistError::Corrupt("empty HashExpressor"));
    }
    let inserted = r.count()?;
    // Checked: a corrupt omega near usize::MAX must error, not overflow.
    let cell_word_count = omega
        .checked_mul(usize::try_from(cell_bits).unwrap_or(usize::MAX))
        .ok_or(PersistError::Truncated)?
        .div_ceil(64);
    let cells = PackedCells::from_words(r.words(cell_word_count)?, omega, cell_bits);
    r.finish()?;
    let _ = kind;
    Ok(Decoded {
        h0,
        family,
        sim_seed,
        bloom,
        he: HashExpressor::from_parts(cells, k, inserted),
    })
}

/// Encodes the sharded container image: a header naming the splitter,
/// followed by length-framed per-shard blobs (each a complete [`encode`]
/// image).
///
/// ```text
/// magic "HABS" | version u8 | kind u8 (0 = HABF, 1 = f-HABF)
/// shards u32 | splitter_seed u64 | built_keys u64 | inserted u64
/// per shard: blob_len u64 | blob bytes…
/// ```
pub(crate) fn encode_sharded(
    kind: u8,
    splitter_seed: u64,
    built_keys: u64,
    inserted: u64,
    blobs: &[Vec<u8>],
) -> Vec<u8> {
    let payload: usize = blobs.iter().map(|b| 8 + b.len()).sum();
    let mut out = Vec::with_capacity(34 + payload);
    out.extend_from_slice(SHARDED_MAGIC);
    out.push(SHARDED_VERSION);
    out.push(kind);
    out.extend_from_slice(&(blobs.len() as u32).to_le_bytes());
    out.extend_from_slice(&splitter_seed.to_le_bytes());
    out.extend_from_slice(&built_keys.to_le_bytes());
    out.extend_from_slice(&inserted.to_le_bytes());
    for blob in blobs {
        out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        out.extend_from_slice(blob);
    }
    out
}

pub(crate) struct ShardedDecoded<'a> {
    pub splitter_seed: u64,
    pub built_keys: u64,
    pub inserted: u64,
    pub blobs: Vec<&'a [u8]>,
}

pub(crate) fn decode_sharded(
    buf: &[u8],
    expect_kind: u8,
) -> Result<ShardedDecoded<'_>, PersistError> {
    let mut r = Reader::new(buf);
    if r.bytes(4)? != SHARDED_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u8()?;
    if version != SHARDED_VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let kind = r.u8()?;
    if kind != expect_kind {
        return Err(PersistError::WrongKind);
    }
    let shards = usize::try_from(r.u32()?).map_err(|_| PersistError::Truncated)?;
    if shards == 0 || shards > MAX_SHARDS {
        return Err(PersistError::Corrupt("shard count out of range"));
    }
    let splitter_seed = r.u64()?;
    let built_keys = r.u64()?;
    let inserted = r.u64()?;
    let mut blobs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let len = r.u64()?;
        let len = usize::try_from(len).map_err(|_| PersistError::Truncated)?;
        blobs.push(r.bytes(len)?);
    }
    r.finish()?;
    Ok(ShardedDecoded {
        splitter_seed,
        built_keys,
        inserted,
        blobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::habf::{FHabf, Habf, HabfConfig};
    use habf_filters::Filter;

    type Workload = (Vec<Vec<u8>>, Vec<(Vec<u8>, f64)>);

    fn sample() -> Workload {
        let pos: Vec<Vec<u8>> = (0..2_000)
            .map(|i| format!("pos:{i}").into_bytes())
            .collect();
        let neg: Vec<(Vec<u8>, f64)> = (0..2_000)
            .map(|i| (format!("neg:{i}").into_bytes(), 1.0 + (i % 9) as f64))
            .collect();
        (pos, neg)
    }

    #[test]
    fn habf_roundtrip_preserves_every_answer() {
        let (pos, neg) = sample();
        let original = Habf::build(&pos, &neg, &HabfConfig::with_total_bits(2_000 * 10));
        let bytes = original.to_bytes();
        let restored = Habf::from_bytes(&bytes).expect("roundtrip");
        for k in &pos {
            assert!(restored.contains(k));
        }
        for (k, _) in &neg {
            assert_eq!(original.contains(k), restored.contains(k));
        }
        assert_eq!(original.space_bits(), restored.space_bits());
    }

    #[test]
    fn fhabf_roundtrip_preserves_every_answer() {
        let (pos, neg) = sample();
        let original = FHabf::build(&pos, &neg, &HabfConfig::with_total_bits(2_000 * 10));
        let bytes = original.to_bytes();
        let restored = FHabf::from_bytes(&bytes).expect("roundtrip");
        for k in &pos {
            assert!(restored.contains(k));
        }
        for (k, _) in &neg {
            assert_eq!(original.contains(k), restored.contains(k));
        }
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let (pos, neg) = sample();
        let habf = Habf::build(&pos, &neg, &HabfConfig::with_total_bits(2_000 * 8));
        assert!(matches!(
            FHabf::from_bytes(&habf.to_bytes()),
            Err(PersistError::WrongKind)
        ));
        let fhabf = FHabf::build(&pos, &neg, &HabfConfig::with_total_bits(2_000 * 8));
        assert!(matches!(
            Habf::from_bytes(&fhabf.to_bytes()),
            Err(PersistError::WrongKind)
        ));
    }

    #[test]
    fn v2_container_layout_is_aligned_and_roundtrips() {
        let mut fw = FrameWriter::new();
        fw.meta().extend_from_slice(b"meta-blob");
        let frame_a: Vec<u64> = (0..13).collect();
        let frame_b: Vec<u64> = vec![u64::MAX; 3];
        fw.frame(&frame_a);
        fw.frame(&frame_b);
        let mut image = Vec::new();
        encode_container_v2("habf", &fw, &mut image);

        let decoded = decode_container(&image).expect("v2 decodes");
        assert_eq!(decoded.header.id, "habf");
        assert_eq!(decoded.header.version, CONTAINER_VERSION);
        assert_eq!(decoded.payload_offset % 8, 0, "payload must be aligned");

        let (meta, entries) = parse_v2_payload(decoded.payload).expect("payload parses");
        assert_eq!(meta, b"meta-blob");
        assert_eq!(entries.len(), 2);
        for e in &entries {
            assert_eq!(e.offset % 8, 0, "frame at {e:?} misaligned");
            assert_eq!(
                (decoded.payload_offset + e.offset) % 8,
                0,
                "frame not aligned in the image"
            );
        }
        assert_eq!(entries[0].words, 13);
        assert_eq!(entries[1].words, 3);

        // The borrowed frame source hands the words back verbatim.
        let mut source = FrameSource::borrowed(decoded.payload, entries.clone());
        assert_eq!(
            source.next_words(13).expect("frame a").as_ref(),
            &frame_a[..]
        );
        assert_eq!(
            source.next_words(3).expect("frame b").as_ref(),
            &frame_b[..]
        );
        source.finish().expect("all consumed");

        // The frame table is inspectable without decoding the filter.
        let (off, table) = frame_table(&image).expect("table parses").expect("v2");
        assert_eq!(off, decoded.payload_offset);
        assert_eq!(table, entries);
    }

    #[test]
    fn v2_frame_validation_is_typed() {
        let mut fw = FrameWriter::new();
        fw.meta().push(7);
        let words: Vec<u64> = vec![1, 2, 3, 4];
        fw.frame(&words);
        let mut image = Vec::new();
        encode_container_v2("habf", &fw, &mut image);
        let decoded = decode_container(&image).expect("v2 decodes");
        let table_pos = decoded.payload_offset + 8 + 1 + 7 + 8; // meta_len|meta|pad|nframes

        // A misaligned frame offset is the dedicated typed error.
        let mut bad = image.clone();
        bad[table_pos] = bad[table_pos].wrapping_add(4);
        let d = decode_container(&bad).expect("envelope still fine");
        assert_eq!(
            parse_v2_payload(d.payload).err(),
            Some(PersistError::Misaligned)
        );

        // A frame torn off its canonical position (gap bytes would hide
        // between table and frame) is rejected even when aligned.
        let mut bad = image.clone();
        bad[table_pos] = bad[table_pos].wrapping_add(8);
        let d = decode_container(&bad).expect("envelope still fine");
        assert_eq!(
            parse_v2_payload(d.payload).err(),
            Some(PersistError::Corrupt("word frames must be contiguous"))
        );

        // A wrong expected word count is a typed mismatch, and unread
        // frames are flagged.
        let d = decode_container(&image).expect("pristine");
        let (_, entries) = parse_v2_payload(d.payload).expect("parses");
        let mut source = FrameSource::borrowed(d.payload, entries.clone());
        assert_eq!(
            source.next_words(5).err(),
            Some(PersistError::Corrupt("frame size mismatch"))
        );
        let source = FrameSource::borrowed(d.payload, entries);
        assert_eq!(
            source.finish().err(),
            Some(PersistError::Corrupt("unconsumed word frames"))
        );

        // Non-zero header padding is rejected (canonical encodings only).
        let mut bad = image;
        bad[14 + "habf".len()] = 1; // first pad byte after the 18-byte header
        assert_eq!(
            decode_container(&bad).err(),
            Some(PersistError::Corrupt("header padding must be zero"))
        );
    }

    #[test]
    fn v1_containers_still_decode() {
        let mut image = Vec::new();
        encode_container("bloom", b"opaque-payload", &mut image);
        let decoded = decode_container(&image).expect("v1 decodes");
        assert_eq!(decoded.header.version, CONTAINER_VERSION_V1);
        assert_eq!(decoded.payload, b"opaque-payload");
        assert_eq!(
            frame_table(&image).expect("no error"),
            None,
            "v1 has no table"
        );
    }

    #[test]
    fn corrupted_images_error_not_panic() {
        let (pos, neg) = sample();
        let habf = Habf::build(&pos, &neg, &HabfConfig::with_total_bits(2_000 * 8));
        let bytes = habf.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Habf::from_bytes(&bad),
            Err(PersistError::BadMagic)
        ));
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            Habf::from_bytes(&bad),
            Err(PersistError::BadVersion(99))
        ));
        // Truncations at every prefix must error, never panic.
        for cut in [0usize, 3, 5, 8, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(Habf::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            Habf::from_bytes(&bad),
            Err(PersistError::Corrupt(_))
        ));
    }
}
