//! Offline, API-compatible shim of the [criterion](https://crates.io/crates/criterion)
//! statistics-driven benchmark harness.
//!
//! The build container for this repository has no network access, so the
//! real crate cannot be fetched; this shim implements exactly the subset of
//! the criterion 0.5 surface the workspace's `benches/` use:
//!
//! * [`Criterion::bench_function`] / [`Criterion::benchmark_group`]
//! * [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::sample_size`] /
//!   [`BenchmarkGroup::finish`]
//! * [`Bencher::iter`] / [`Bencher::iter_batched`] with [`BatchSize`]
//! * [`black_box`], [`criterion_group!`], [`criterion_main!`]
//!
//! Behavior: when the harness binary is invoked with `--bench` (what
//! `cargo bench` passes to `harness = false` targets) every benchmark is
//! warmed up and measured over a fixed number of samples, and a
//! `name  time: [median ns]` line is printed. Under `cargo test` (no
//! `--bench` argument) each benchmark body runs **once** so the target
//! stays a fast compile-and-smoke check. Swap this shim for the real
//! crates.io dependency when building with network access — no source
//! changes to the benches are required.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost in real criterion. The shim
/// accepts the variants for API compatibility but does not batch: every
/// sample is one setup + one timed routine call, so per-call timer overhead
/// inflates sub-microsecond `iter_batched` routines (the workspace only
/// batches whole filter constructions, where that overhead is noise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: criterion batches many per sample.
    SmallInput,
    /// Large inputs: one iteration per batch.
    LargeInput,
    /// Per-iteration setup, no batching.
    PerIteration,
}

/// Shim of `criterion::Criterion`: a registry-free, immediate-mode runner.
pub struct Criterion {
    measure: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` to harness = false bench targets;
        // `cargo test` does not. Only measure for real under `cargo bench`.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            measure,
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Runs (and, under `cargo bench`, measures) one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.measure, self.sample_size, &mut f);
        self
    }

    /// Opens a named group; the shim only uses the name as a prefix.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
            sample_size: None,
        }
    }
}

/// Shim of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Lowers the number of measured samples for expensive benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark under this group's name prefix.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.prefix, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&name, self.criterion.measure, samples, &mut f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, measure: bool, samples: usize, f: &mut F) {
    let mut b = Bencher {
        measure,
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if measure {
        let per_iter = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "{name:<40} time: [{per_iter:.1} ns/iter over {} iters]",
            b.iters
        );
    }
}

/// Shim of `criterion::Bencher`: times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    measure: bool,
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`. Under `cargo test` it runs exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Calibrate a per-sample iteration count targeting ~2ms per sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.total += t.elapsed();
            self.iters += per_sample;
        }
    }

    /// Times `routine` over values produced by `setup` (untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !self.measure {
            black_box(routine(setup()));
            self.iters = 1;
            return;
        }
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }
}

/// Shim of `criterion::criterion_group!`: collects bench functions into one
/// callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Shim of `criterion::criterion_main!`: the binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
