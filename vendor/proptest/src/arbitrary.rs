//! `any::<T>()` for the primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

/// Strategy generating unconstrained values of `A` (proptest's `any`).
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.gen_range(0, 61) as i32 - 30;
        mantissa * (2.0f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps failure reports readable.
        char::from_u32(rng.gen_range(0x20, 0x7F) as u32).unwrap_or('?')
    }
}
