//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Element-count specification accepted by the collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn draw(self, rng: &mut TestRng) -> usize {
        rng.gen_index(self.lo, self.hi + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` targeting a size drawn from `size`.
///
/// As in real proptest the target is best-effort: if the element strategy
/// keeps producing duplicates the set may come out smaller (never smaller
/// than the number of distinct values obtainable, and the minimum size is
/// honored whenever the alphabet allows).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.draw(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(16) + 64;
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
