//! Offline, API-compatible shim of the
//! [proptest](https://crates.io/crates/proptest) property-testing framework.
//!
//! The build container for this repository has no network access, so the
//! real crate cannot be fetched; this shim implements the subset of the
//! proptest 1.x surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer/float
//!   ranges, tuples, and `&str` character-class patterns like
//!   `"[a-z0-9]{1,20}"`,
//! * [`arbitrary::any`] for the primitive types,
//! * [`collection::vec`] and [`collection::hash_set`].
//!
//! Differences from real proptest: no shrinking (a failing input is
//! reported verbatim), and generation is deterministic per test name
//! (override the case count with the `PROPTEST_CASES` environment
//! variable). Swap this shim for the crates.io dependency when building
//! with network access — no source changes to the tests are required.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The prelude mirrors `proptest::prelude` for the names this workspace uses.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($strategy,)+);
                $crate::test_runner::run_proptest(
                    &config,
                    ::core::stringify!($name),
                    &strategy,
                    |($($pat,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case (without panicking the generator loop) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// [`prop_assert!`] for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// [`prop_assert!`] for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond),
            ));
        }
    };
}
