//! The [`Strategy`] trait and the built-in strategies: integer and float
//! ranges, tuples, `&str` character-class patterns, [`Just`], and
//! [`Map`] (the `prop_map` combinator).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f` (proptest's `prop_map`).
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // unit_f64 is right-open; nudge a hair past hi and clamp so hi is
        // reachable without ever exceeding it.
        (lo + rng.unit_f64() * (hi - lo) * (1.0 + 1e-9)).clamp(lo, hi)
    }
}

/// `&str` strategies are regex-like patterns. The shim supports the single
/// form the workspace uses: one character class with a repetition count,
/// `"[a-z0-9./:-]{1,24}"` (ranges and literals inside the class; a trailing
/// `-` is a literal).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?} (shim supports \"[class]{{lo,hi}}\")")
        });
        let len = rng.gen_index(lo, hi + 1);
        (0..len)
            .map(|_| alphabet[rng.gen_index(0, alphabet.len())])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    if class.is_empty() {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a as u32 > b as u32 {
                return None;
            }
            for c in (a as u32)..=(b as u32) {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    (lo <= hi).then_some((alphabet, lo, hi))
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_parses_ranges_and_literals() {
        let (alphabet, lo, hi) = parse_class_pattern("[a-c0-1./:-]{1,24}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '0', '1', '.', '/', ':', '-']);
        assert_eq!((lo, hi), (1, 24));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u32..=32).generate(&mut rng);
            assert!((1..=32).contains(&w));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
