//! The case-generation loop, its deterministic RNG, and the error plumbing
//! behind `prop_assert!` / `prop_assume!`.

use crate::strategy::Strategy;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: cases.max(1),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig::with_cases(cases)
    }
}

/// Why a single generated case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert!` failure: the property does not hold for this input.
    Fail(String),
    /// `prop_assume!` rejection: the input is outside the property's domain.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generator RNG (SplitMix64), seeded from the test name so
/// every run of a test sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with an explicit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`. `hi` must exceed `lo`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw from `[lo, hi)` for usize bounds.
    pub fn gen_index(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo as u64, hi as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one `proptest!` function: generates inputs from `strategy` until
/// `config.cases` successful runs of `test`, panicking on the first failing
/// input (printed verbatim; this shim does not shrink).
pub fn run_proptest<S, F>(config: &ProptestConfig, name: &str, strategy: &S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x4841_4246_2021_0000u64)
        ^ fnv1a(name);
    let max_rejects = config.cases.saturating_mul(64).max(1024);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::new(base ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        case += 1;
        let value = strategy.generate(&mut rng);
        let mut shown = format!("{value:?}");
        if shown.len() > 1024 {
            shown.truncate(1024);
            shown.push_str("… (truncated)");
        }
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many inputs rejected by prop_assume! ({why})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed after {passed} passing case(s)\n{msg}\ninput: {shown}"
                )
            }
        }
    }
}
