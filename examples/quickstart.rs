//! Quickstart: build an HABF from a member set and a cost-annotated set of
//! known negatives, and compare it head-to-head with a standard Bloom
//! filter of identical size.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use habf::core::{Habf, HabfConfig};
use habf::filters::{BloomFilter, Filter};

fn main() {
    // The set we want to answer membership queries for.
    let members: Vec<Vec<u8>> = (0..50_000)
        .map(|i| format!("user:{i}").into_bytes())
        .collect();

    // Keys we know will be queried but are NOT members, with the cost of
    // mistakenly admitting each one. Here every 50th key is 100× more
    // expensive (think: a hot object whose false positive triggers a cold
    // disk read on every lookup).
    let known_negatives: Vec<(Vec<u8>, f64)> = (0..50_000)
        .map(|i| {
            let cost = if i % 50 == 0 { 100.0 } else { 1.0 };
            (format!("bot:{i}").into_bytes(), cost)
        })
        .collect();

    // Same space for both filters: 10 bits per member.
    let total_bits = members.len() * 10;

    let habf = Habf::build(
        &members,
        &known_negatives,
        &HabfConfig::with_total_bits(total_bits),
    );
    let bloom = BloomFilter::build(&members, total_bits);

    // One-sided error: members are always admitted.
    assert!(members.iter().all(|k| habf.contains(k)));
    assert!(members.iter().all(|k| bloom.contains(k)));

    // Cost-weighted false positives over the known negatives.
    let weigh = |f: &dyn Filter| -> (f64, usize) {
        let mut fp_cost = 0.0;
        let mut fp = 0usize;
        let total: f64 = known_negatives.iter().map(|(_, c)| c).sum();
        for (key, cost) in &known_negatives {
            if f.contains(key) {
                fp_cost += cost;
                fp += 1;
            }
        }
        (fp_cost / total, fp)
    };
    let (habf_wfpr, habf_fp) = weigh(&habf);
    let (bloom_wfpr, bloom_fp) = weigh(&bloom);

    println!("space budget       : {total_bits} bits ({} bits/key)", 10);
    println!("members            : {}", members.len());
    println!("known negatives    : {}", known_negatives.len());
    println!();
    println!(
        "standard Bloom     : {bloom_fp} false positives, weighted FPR {:.4}%",
        bloom_wfpr * 100.0
    );
    println!(
        "HABF               : {habf_fp} false positives, weighted FPR {:.4}%",
        habf_wfpr * 100.0
    );
    println!(
        "HABF optimizer     : {} collision keys found, {} optimized, {} chains stored",
        habf.stats().initial_collision_keys,
        habf.stats().optimized,
        habf.expressor_entries()
    );
    assert!(
        habf_wfpr <= bloom_wfpr,
        "HABF should not lose to BF when the negatives are known"
    );
}
