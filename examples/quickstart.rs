//! Quickstart: build an HABF and a standard Bloom filter of identical
//! size through the unified [`FilterSpec`] entry point and compare them
//! head-to-head on cost-weighted false positives.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use habf::prelude::{BuildInput, DynFilter, FilterSpec};

fn main() {
    // The set we want to answer membership queries for.
    let members: Vec<Vec<u8>> = (0..50_000)
        .map(|i| format!("user:{i}").into_bytes())
        .collect();

    // Keys we know will be queried but are NOT members, with the cost of
    // mistakenly admitting each one. Here every 50th key is 100× more
    // expensive (think: a hot object whose false positive triggers a cold
    // disk read on every lookup).
    let known_negatives: Vec<(Vec<u8>, f64)> = (0..50_000)
        .map(|i| {
            let cost = if i % 50 == 0 { 100.0 } else { 1.0 };
            (format!("bot:{i}").into_bytes(), cost)
        })
        .collect();

    // One build input, two specs, same 10 bits/key budget. Every filter
    // the registry knows builds through this exact entry point — swap
    // FilterSpec::habf() for any `habf filters` id and nothing else
    // changes.
    let input = BuildInput::from_members(&members).with_costed_negatives(&known_negatives);
    let habf = FilterSpec::habf()
        .bits_per_key(10.0)
        .build(&input)
        .expect("habf builds");
    let bloom = FilterSpec::bloom()
        .bits_per_key(10.0)
        .build(&input)
        .expect("bloom builds");

    // One-sided error: members are always admitted.
    assert!(members.iter().all(|k| habf.contains(k)));
    assert!(members.iter().all(|k| bloom.contains(k)));

    // Cost-weighted false positives over the known negatives.
    let weigh = |f: &dyn DynFilter| -> (f64, usize) {
        let mut fp_cost = 0.0;
        let mut fp = 0usize;
        let total: f64 = known_negatives.iter().map(|(_, c)| c).sum();
        for (key, cost) in &known_negatives {
            if f.contains(key) {
                fp_cost += cost;
                fp += 1;
            }
        }
        (fp_cost / total, fp)
    };
    let (habf_wfpr, habf_fp) = weigh(habf.as_ref());
    let (bloom_wfpr, bloom_fp) = weigh(bloom.as_ref());

    println!("space budget       : 10 bits/key for both filters");
    println!("members            : {}", members.len());
    println!("known negatives    : {}", known_negatives.len());
    println!();
    println!(
        "{:<18} : {bloom_fp} false positives, weighted FPR {:.4}%",
        bloom.name(),
        bloom_wfpr * 100.0
    );
    println!(
        "{:<18} : {habf_fp} false positives, weighted FPR {:.4}%",
        habf.name(),
        habf_wfpr * 100.0
    );
    for (label, value) in habf.metadata() {
        println!("HABF {label:<18}: {value}");
    }
    assert!(
        habf_wfpr <= bloom_wfpr,
        "HABF should not lose to BF when the negatives are known"
    );
}
