//! LSM-tree point lookups — the paper's LevelDB/RocksDB motivation.
//!
//! A leveled LSM store consults one filter per sorted run; every false
//! positive costs a block read, weighted by level depth (cold levels are
//! more expensive — the ElasticBF cost model the paper cites). We mine
//! "frequently missed keys" from a query log, hand them to HABF as
//! cost-annotated negative hints, and compare the simulated I/O against
//! same-budget Bloom filters and no filters at all.
//!
//! ```sh
//! cargo run --release --example kv_store_cache
//! ```

use habf::lsm::{FilterSpec, IoStats, Lsm, LsmConfig};
use habf::util::Xoshiro256;
use habf::workloads::ZipfSampler;

const STORED_KEYS: usize = 40_000;
const MISS_UNIVERSE: usize = 8_000;
const QUERIES: usize = 120_000;
/// Draws in the operator's historical query log that the hints are mined
/// from. The longer the log, the better the hint coverage of future miss
/// traffic — HABF only protects the misses it knows about.
const LOG_DRAWS: usize = 240_000;
const BITS_PER_KEY: f64 = 10.0;

fn key(i: usize) -> Vec<u8> {
    format!("row:{i:09}").into_bytes()
}

fn miss_key(i: usize) -> Vec<u8> {
    format!("ghost:{i:09}").into_bytes()
}

fn run(filter: Option<FilterSpec>, hints: Option<&[(Vec<u8>, f64)]>) -> (IoStats, usize) {
    // Large-ish runs keep each run's HashExpressor occupancy t/ω low
    // (accidental-chain FPR is bounded by t/ω, paper §III-F).
    let mut db = Lsm::new(LsmConfig {
        memtable_capacity: 16_384,
        level_fanout: 4,
        filter,
    });
    if let Some(h) = hints {
        db.set_negative_hints(h.to_vec())
            .expect("finite hint costs");
    }
    for i in 0..STORED_KEYS {
        db.put(key(i), format!("value-{i}").into_bytes());
    }
    db.flush();
    db.reset_io_stats();

    // Zipf-skewed read traffic: half the lookups are misses drawn from a
    // popular "ghost" set (deleted rows, wrong-shard keys, crawlers…).
    let mut rng = Xoshiro256::new(99);
    let stored_sampler = ZipfSampler::new(STORED_KEYS, 0.8);
    let ghost_sampler = ZipfSampler::new(MISS_UNIVERSE, 1.2);
    let mut hits = 0usize;
    for q in 0..QUERIES {
        let found = if q % 2 == 0 {
            db.get(&key(stored_sampler.sample(&mut rng))).is_some()
        } else {
            db.get(&miss_key(ghost_sampler.sample(&mut rng))).is_some()
        };
        hits += usize::from(found);
    }
    (db.io_stats(), hits)
}

fn main() {
    // The operator's query log reveals which absent keys are hot; their
    // cost is their observed lookup frequency.
    let sampler = ZipfSampler::new(MISS_UNIVERSE, 1.2);
    let mut rng = Xoshiro256::new(77);
    let mut freq = vec![0u32; MISS_UNIVERSE];
    for _ in 0..LOG_DRAWS {
        freq[sampler.sample(&mut rng)] += 1;
    }
    let hints: Vec<(Vec<u8>, f64)> = freq
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| (miss_key(i), f as f64))
        .collect();
    println!(
        "stored rows: {STORED_KEYS}, hot missing keys hinted: {}, queries: {QUERIES}",
        hints.len()
    );

    println!(
        "\n{:<22} {:>12} {:>13} {:>15} {:>14}",
        "filter per run", "block reads", "wasted reads", "weighted cost", "wasted cost"
    );
    let mut results = Vec::new();
    for (name, kind, hinted) in [
        ("none", None, false),
        (
            "Bloom",
            Some(FilterSpec::bloom().bits_per_key(BITS_PER_KEY)),
            false,
        ),
        (
            "HABF (hinted)",
            Some(FilterSpec::habf().bits_per_key(BITS_PER_KEY)),
            true,
        ),
        (
            "f-HABF (hinted)",
            Some(FilterSpec::fhabf().bits_per_key(BITS_PER_KEY)),
            true,
        ),
    ] {
        let (io, hits) = run(kind, hinted.then_some(hints.as_slice()));
        println!(
            "{:<22} {:>12} {:>13} {:>15} {:>14}",
            name, io.block_reads, io.wasted_reads, io.weighted_cost, io.wasted_weighted_cost
        );
        assert_eq!(hits, QUERIES / 2, "a filter dropped stored rows");
        results.push((name, io));
    }

    let bloom = results[1].1;
    let habf = results[2].1;
    let delta_pct = if bloom.wasted_reads > 0 {
        100.0 * (bloom.wasted_reads as f64 - habf.wasted_reads as f64) / bloom.wasted_reads as f64
    } else {
        0.0
    };
    println!(
        "\nWith the same {BITS_PER_KEY} bits/key of filter memory, the hinted \
         HABF wastes {} block reads where Bloom wastes {} ({delta_pct:.0}% of \
         the wasted I/O eliminated). The win depends on hint coverage: HABF \
         only protects misses the log has seen.",
        habf.wasted_reads, bloom.wasted_reads,
    );
}
