//! URL blacklist screening — the paper's intrusion-detection motivation.
//!
//! A gateway keeps a blacklist filter in memory. Known-benign URLs that
//! *will* be queried (mined from access logs, as the paper suggests) have
//! skewed costs: popular sites trip the slow path far more often when
//! misidentified. We compare HABF against same-size BF / Xor / learned
//! filters on the weighted FPR they induce.
//!
//! ```sh
//! cargo run --release --example url_blacklist
//! ```

use habf::core::{Habf, HabfConfig};
use habf::filters::{BloomFilter, Filter, LearnedBloomFilter, LogisticRegression, XorFilter};
use habf::util::Xoshiro256;
use habf::workloads::{metrics, zipf_costs, ShallaConfig};

fn main() {
    // ~29k blacklisted / ~29k benign-but-queried URLs (1% of the paper's
    // Shalla snapshot), with Zipf(1.0) popularity costs on the benign side.
    let ds = ShallaConfig::with_scale(0.02).generate();
    let mut rng = Xoshiro256::new(7);
    let costs = zipf_costs(ds.negatives.len(), 1.0, &mut rng);
    let negatives_with_costs: Vec<(&[u8], f64)> = ds.negatives_with_costs(&costs);

    let total_bits = (1.5 * 0.02 * 8.0 * 1024.0 * 1024.0) as usize; // paper's 1.5 MB, scaled
    println!(
        "blacklist: {} URLs, benign traffic: {} URLs, filter budget: {} KB",
        ds.positives.len(),
        ds.negatives.len(),
        total_bits / 8 / 1024
    );

    let habf = Habf::build(
        &ds.positives,
        &negatives_with_costs,
        &HabfConfig::with_total_bits(total_bits),
    );
    let bloom = BloomFilter::build(&ds.positives, total_bits);
    let xor = XorFilter::build(&ds.positives, total_bits);
    let lbf = LearnedBloomFilter::build(
        &ds.positives,
        &ds.negatives,
        total_bits,
        Box::new(LogisticRegression::new(10, 2, 0.15, 3)),
    );

    println!(
        "\n{:<10} {:>14} {:>18}",
        "filter", "weighted FPR", "false positives"
    );
    for filter in [
        &habf as &dyn Filter,
        &bloom as &dyn Filter,
        &xor as &dyn Filter,
        &lbf as &dyn Filter,
    ] {
        // The gateway must never block a blacklisted URL lookup (zero FNR).
        assert_eq!(
            metrics::false_negatives(|k| filter.contains(k), &ds.positives),
            0
        );
        let wfpr = metrics::weighted_fpr(|k| filter.contains(k), &ds.negatives, &costs);
        let fp = ds.negatives.iter().filter(|k| filter.contains(k)).count();
        println!("{:<10} {:>13.5}% {:>18}", filter.name(), wfpr * 100.0, fp);
    }
    println!(
        "\nHABF spends its budget where the cost is: the popular benign URLs \
         are optimized first (collision queue in descending cost order)."
    );
}
