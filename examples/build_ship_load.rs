//! Offline build → ship → online load, the intended HABF deployment.
//!
//! The negative keys and costs live where the logs are (a batch job); the
//! query servers only need the finished filter. This example builds an
//! HABF, writes its binary image to disk, loads it back, and verifies the
//! loaded filter answers identically.
//!
//! ```sh
//! cargo run --release --example build_ship_load
//! ```

use habf::core::{Habf, HabfConfig};
use habf::filters::Filter;
use habf::workloads::ShallaConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "Offline": the batch side with access to logs.
    let ds = ShallaConfig::with_scale(0.01).generate();
    let negatives: Vec<(&[u8], f64)> = ds
        .negatives
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_slice(), 1.0 + (i % 100) as f64))
        .collect();
    let filter = Habf::build(
        &ds.positives,
        &negatives,
        &HabfConfig::with_total_bits(ds.positives.len() * 10),
    );
    let image = filter.to_bytes();
    let path = std::env::temp_dir().join("habf_filter.bin");
    std::fs::write(&path, &image)?;
    println!(
        "built over {} positives / {} known negatives; image: {} bytes -> {}",
        ds.positives.len(),
        ds.negatives.len(),
        image.len(),
        path.display()
    );

    // "Online": a query server with no access to the key sets.
    let shipped = Habf::from_bytes(&std::fs::read(&path)?)?;
    let mut checked = 0usize;
    for key in ds.positives.iter().chain(ds.negatives.iter()) {
        assert_eq!(filter.contains(key), shipped.contains(key));
        checked += 1;
    }
    println!("loaded filter agrees with the original on all {checked} keys");
    println!(
        "members always accepted: {}",
        ds.positives.iter().all(|k| shipped.contains(k))
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
