//! Offline build → ship → online load, the intended HABF deployment.
//!
//! The negative keys and costs live where the logs are (a batch job); the
//! query servers only need the finished filter image. This example builds
//! through [`FilterSpec`], writes the self-describing `HABC` container to
//! disk, loads it back through the registry — the online side never names
//! a concrete filter type — and verifies the loaded filter answers
//! identically.
//!
//! ```sh
//! cargo run --release --example build_ship_load
//! ```

use habf::core::registry;
use habf::prelude::{BuildInput, FilterSpec};
use habf::workloads::ShallaConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "Offline": the batch side with access to logs.
    let ds = ShallaConfig::with_scale(0.01).generate();
    let negatives: Vec<(&[u8], f64)> = ds
        .negatives
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_slice(), 1.0 + (i % 100) as f64))
        .collect();
    let input = BuildInput::from_members(&ds.positives).with_costed_negatives(&negatives);
    let filter = FilterSpec::habf().bits_per_key(10.0).build(&input)?;
    let image = filter.to_container_bytes();
    let path = std::env::temp_dir().join("habf_filter.bin");
    std::fs::write(&path, &image)?;
    println!(
        "built {} over {} positives / {} known negatives; image: {} bytes -> {}",
        filter.filter_id(),
        ds.positives.len(),
        ds.negatives.len(),
        image.len(),
        path.display()
    );

    // "Online": a query server with no access to the key sets — and no
    // knowledge of the filter type; the container self-describes.
    let shipped = registry::load(&std::fs::read(&path)?)?;
    println!(
        "loaded a {} from a {} (v{})",
        shipped.filter.filter_id(),
        shipped.format.describe(),
        shipped.version
    );
    let mut checked = 0usize;
    for key in ds.positives.iter().chain(ds.negatives.iter()) {
        assert_eq!(filter.contains(key), shipped.filter.contains(key));
        checked += 1;
    }
    println!("loaded filter agrees with the original on all {checked} keys");
    println!(
        "members always accepted: {}",
        ds.positives.iter().all(|k| shipped.filter.contains(k))
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
