//! Edge-cache admission — the paper's web-caching motivation ("Internet
//! traffic is highly skewed and concentrates on some popular files").
//!
//! An edge node keeps a filter of the objects resident in its cache. A
//! false positive sends the request to the local disk instead of directly
//! to the origin — and the damage is proportional to how popular the
//! object is. The operator already monitors per-object request rates, so
//! the filter can be built cost-aware. We compare HABF with the Weighted
//! Bloom filter (the classic cost-aware baseline) and a plain BF.
//!
//! ```sh
//! cargo run --release --example web_cache
//! ```

use habf::core::{FHabf, Habf, HabfConfig};
use habf::filters::{BloomFilter, Filter, WeightedBloomFilter};
use habf::util::Xoshiro256;
use habf::workloads::{metrics, zipf_costs, YcsbConfig};

fn main() {
    // Object universe from the YCSB-style generator: ~125k resident
    // objects, ~116k popular-but-absent objects with Zipf(1.2) request
    // rates as costs.
    let ds = YcsbConfig::with_scale(0.01).generate();
    let mut rng = Xoshiro256::new(0xCACE);
    let costs = zipf_costs(ds.negatives.len(), 1.2, &mut rng);
    let negatives_with_costs: Vec<(&[u8], f64)> = ds.negatives_with_costs(&costs);

    let total_bits = ds.positives.len() * 10;
    println!(
        "resident objects: {}, absent-but-requested: {}, filter: {} KB",
        ds.positives.len(),
        ds.negatives.len(),
        total_bits / 8 / 1024
    );

    let cfg = HabfConfig::with_total_bits(total_bits);
    let habf = Habf::build(&ds.positives, &negatives_with_costs, &cfg);
    let fhabf = FHabf::build(&ds.positives, &negatives_with_costs, &cfg);
    let wbf = WeightedBloomFilter::build(&ds.positives, &negatives_with_costs, total_bits, 2_048);
    let bloom = BloomFilter::build(&ds.positives, total_bits);

    println!(
        "\n{:<8} {:>14} {:>14} {:>12}",
        "filter", "weighted FPR", "plain FPR", "extra bytes"
    );
    for (filter, extra) in [
        (&habf as &dyn Filter, 0usize),
        (&fhabf as &dyn Filter, 0),
        (&wbf as &dyn Filter, wbf.cache_bytes()),
        (&bloom as &dyn Filter, 0),
    ] {
        assert_eq!(
            metrics::false_negatives(|k| filter.contains(k), &ds.positives),
            0,
            "{} dropped a resident object",
            filter.name()
        );
        let w = metrics::weighted_fpr(|k| filter.contains(k), &ds.negatives, &costs);
        let p = metrics::fpr(|k| filter.contains(k), &ds.negatives);
        println!(
            "{:<8} {:>13.5}% {:>13.5}% {:>12}",
            filter.name(),
            w * 100.0,
            p * 100.0,
            extra
        );
    }
    println!(
        "\nWBF needs its query-time cost cache (extra bytes above) and still \
         only adjusts *how many* probes a key gets; HABF re-routes the \
         colliding keys themselves within the same space budget."
    );
}
