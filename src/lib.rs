//! # habf — Hash Adaptive Bloom Filter
//!
//! A complete, from-scratch Rust reproduction of **"Hash Adaptive Bloom
//! Filter"** (Rongbiao Xie, Meng Li, Zheyu Miao, Rong Gu, He Huang, Haipeng
//! Dai, Guihai Chen — ICDE 2021, arXiv:2106.07037).
//!
//! A Bloom filter hashes every key with the same `k` functions, so it
//! cannot use two pieces of information many systems actually have at
//! build time: **which negative keys will be queried** and **how much each
//! false positive costs**. HABF customizes the hash-function subset of
//! individual positive keys (via the construction-time TPJO optimizer) so
//! that known, costly negatives stop colliding, stores the customized
//! subsets in a compact probabilistic table (the *HashExpressor*), and
//! answers queries in at most two rounds with zero false negatives.
//!
//! ## Crates behind this façade
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `habf-core` | `Habf`, `FHabf`, HashExpressor, TPJO, theory bounds |
//! | [`filters`] | `habf-filters` | Bloom / Xor / Weighted-Bloom / LBF / SLBF / Ada-BF baselines |
//! | [`hashing`] | `habf-hashing` | the 22-function Table II family, double hashing |
//! | [`workloads`] | `habf-workloads` | Shalla-like & YCSB-like generators, Zipf costs, metrics |
//! | [`lsm`] | `habf-lsm` | mini LSM-tree KV store with pluggable per-run filters |
//! | [`util`] | `habf-util` | bit vectors, packed cells, RNG, allocation tracking |
//!
//! ## Example
//!
//! Every filter builds through the one validated entry point
//! ([`prelude::FilterSpec`]) and serves behind the object-safe
//! [`prelude::DynFilter`]:
//!
//! ```
//! use habf::prelude::{BuildInput, FilterSpec};
//!
//! let members: Vec<Vec<u8>> = (0..500).map(|i| format!("user:{i}").into_bytes()).collect();
//! let blocked: Vec<(Vec<u8>, f64)> = (0..500)
//!     .map(|i| (format!("bot:{i}").into_bytes(), 1.0))
//!     .collect();
//! let input = BuildInput::from_members(&members).with_costed_negatives(&blocked);
//! let filter = FilterSpec::habf().bits_per_key(10.0).build(&input).unwrap();
//! assert!(members.iter().all(|k| filter.contains(k)));
//!
//! // Ships as a self-describing container, loads back by id.
//! let image = filter.to_container_bytes();
//! let loaded = habf::core::registry::load(&image).unwrap();
//! assert_eq!(loaded.filter.filter_id(), "habf");
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for
//! paper-vs-measured results, and `crates/bench/src/bin/` for the binaries
//! regenerating every figure of the evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use habf_core as core;
pub use habf_filters as filters;
pub use habf_hashing as hashing;
pub use habf_lsm as lsm;
pub use habf_serve as serve;
pub use habf_util as util;
pub use habf_workloads as workloads;

/// Convenience prelude: the types most programs need.
///
/// The unified filter API ([`habf_core::FilterSpec`] →
/// [`habf_core::DynFilter`] with [`habf_core::BatchQuery`] /
/// [`habf_core::Rebuildable`] capabilities), the concrete HABF-family
/// types, the persistence surface, and the adaptation types (`FpLog`,
/// `AdaptPolicy`, `HintError`) — no deep module paths needed.
pub mod prelude {
    pub use habf_core::{
        AdaptPolicy, BatchQuery, BuildError, BuildInput, DynFilter, FHabf, FilterSpec, FpLog, Habf,
        HabfConfig, ImageFormat, LoadedFilter, PersistError, Rebuildable, ShardedConfig,
        ShardedHabf,
    };
    pub use habf_filters::Filter;
    pub use habf_lsm::HintError;
}
