//! `habf` — command-line front end for building, querying, and inspecting
//! HABF filter images.
//!
//! ```text
//! habf build --positives pos.txt --negatives neg.txt --bits-per-key 10 --out filter.bin
//! habf build --positives pos.txt --negatives neg.txt --shards 4 --threads 2 --out filter.bin
//! habf query filter.bin <key> [<key>…]        # exit 0 if all maybe-present
//! habf inspect filter.bin
//! ```
//!
//! `--shards N` (with N > 1) builds a sharded filter: keys are partitioned
//! by a splitter hash and the shards are built in parallel over
//! `--threads` workers (0 = auto). Query and inspect load either format.
//!
//! `--negatives` lines are either `key` (cost 1) or `key<TAB>cost`. Keys
//! are one per line, newline-delimited, matched as raw bytes.

use habf::core::{FHabf, Habf, HabfConfig, ShardedConfig, ShardedHabf};
use habf::filters::Filter;
use std::io::{BufRead, Write};
use std::process::ExitCode;

const USAGE: &str = "usage:\n  habf build --positives FILE --negatives FILE [--bits-per-key F] \
         [--fast] [--seed N] [--shards N] [--threads N] [--out FILE]\n  habf query FILTER KEY \
[KEY…]\n  habf inspect FILTER";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn read_lines(path: &str) -> Vec<Vec<u8>> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("habf: cannot open {path}: {e}");
        std::process::exit(1)
    });
    std::io::BufReader::new(file)
        .split(b'\n')
        .map(|l| l.expect("read line"))
        .filter(|l| !l.is_empty())
        .collect()
}

fn parse_negatives(path: &str) -> Vec<(Vec<u8>, f64)> {
    read_lines(path)
        .into_iter()
        .map(|line| {
            // `key\tcost` or bare `key`.
            match line.iter().rposition(|&b| b == b'\t') {
                Some(tab) => {
                    let cost = std::str::from_utf8(&line[tab + 1..])
                        .ok()
                        .and_then(|s| s.trim().parse::<f64>().ok());
                    match cost {
                        Some(c) if c.is_finite() && c > 0.0 => (line[..tab].to_vec(), c),
                        _ => (line, 1.0), // tab was part of the key
                    }
                }
                None => (line, 1.0),
            }
        })
        .collect()
}

fn cmd_build(args: &[String]) -> ExitCode {
    let mut positives_path = None;
    let mut negatives_path = None;
    let mut bits_per_key = 10.0f64;
    let mut fast = false;
    let mut seed = 0x4841_4246u64;
    let mut shards = 1usize;
    let mut threads = 0usize;
    let mut out = "filter.bin".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--positives" => positives_path = Some(val()),
            "--negatives" => negatives_path = Some(val()),
            "--bits-per-key" => bits_per_key = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--out" => out = val(),
            "--fast" => fast = true,
            _ => usage(),
        }
    }
    if shards == 0 {
        eprintln!("habf: --shards must be at least 1");
        return ExitCode::FAILURE;
    }
    let (Some(pp), Some(np)) = (positives_path, negatives_path) else {
        usage()
    };
    let positives = read_lines(&pp);
    if positives.is_empty() {
        eprintln!("habf: {pp} holds no keys");
        return ExitCode::FAILURE;
    }
    let negatives = parse_negatives(&np);
    let mut cfg = HabfConfig::with_total_bits((positives.len() as f64 * bits_per_key) as usize);
    cfg.seed = seed;

    let (image, stats_line) = if shards > 1 {
        let mut scfg = ShardedConfig::new(shards, cfg);
        scfg.threads = threads;
        if fast {
            let f = ShardedHabf::<FHabf>::build_par(&positives, &negatives, &scfg);
            (
                f.to_bytes(),
                format!(
                    "Sharded-f-HABF: {} positives across {} shards",
                    positives.len(),
                    f.shard_count()
                ),
            )
        } else {
            let f = ShardedHabf::<Habf>::build_par(&positives, &negatives, &scfg);
            (
                f.to_bytes(),
                format!(
                    "Sharded-HABF: {} positives across {} shards",
                    positives.len(),
                    f.shard_count()
                ),
            )
        }
    } else if fast {
        let f = FHabf::build(&positives, &negatives, &cfg);
        let s = f.stats().clone();
        (
            f.to_bytes(),
            format!(
                "f-HABF: {} positives, {} negatives, {} collision keys, {} optimized",
                s.positives, s.negatives, s.initial_collision_keys, s.optimized
            ),
        )
    } else {
        let f = Habf::build(&positives, &negatives, &cfg);
        let s = f.stats().clone();
        (
            f.to_bytes(),
            format!(
                "HABF: {} positives, {} negatives, {} collision keys, {} optimized, {} failed",
                s.positives, s.negatives, s.initial_collision_keys, s.optimized, s.failed
            ),
        )
    };
    if let Err(e) = std::fs::write(&out, &image) {
        eprintln!("habf: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{stats_line}");
    println!("wrote {} bytes to {out}", image.len());
    ExitCode::SUCCESS
}

/// Loads any persisted filter kind — unsharded or sharded, HABF or f-HABF
/// — from an image (the magics and kind bytes disambiguate).
fn load(path: &str) -> Result<Box<dyn Filter>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(f) = Habf::from_bytes(&bytes) {
        return Ok(Box::new(f));
    }
    if let Ok(f) = FHabf::from_bytes(&bytes) {
        return Ok(Box::new(f));
    }
    if let Ok(f) = ShardedHabf::<Habf>::from_bytes(&bytes) {
        return Ok(Box::new(f));
    }
    ShardedHabf::<FHabf>::from_bytes(&bytes)
        .map(|f| Box::new(f) as Box<dyn Filter>)
        .map_err(|e| format!("{path}: {e}"))
}

fn cmd_query(args: &[String]) -> ExitCode {
    let [path, keys @ ..] = args else { usage() };
    if keys.is_empty() {
        usage();
    }
    let filter = match load(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("habf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let mut all_present = true;
    for key in keys {
        let hit = filter.contains(key.as_bytes());
        all_present &= hit;
        let _ = writeln!(lock, "{}\t{}", if hit { "maybe" } else { "no" }, key);
    }
    if all_present {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_inspect(args: &[String]) -> ExitCode {
    let [path] = args else { usage() };
    match load(path) {
        Ok(f) => {
            println!("kind        : {}", f.name());
            println!(
                "space       : {} bits ({} KB)",
                f.space_bits(),
                f.space_bits() / 8 / 1024
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("habf: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--help` anywhere (including `habf build --help`) prints usage and
    // succeeds. Query keys are raw bytes, but a literal "--help" key is far
    // less likely than a user probing for help.
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") || args[0] == "help" {
        if args.is_empty() {
            usage();
        }
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (cmd, rest) = args.split_first().expect("non-empty args");
    match cmd.as_str() {
        "build" => cmd_build(rest),
        "query" => cmd_query(rest),
        "inspect" => cmd_inspect(rest),
        _ => usage(),
    }
}
