//! `habf` — command-line front end for building, querying, inspecting,
//! and adapting HABF filter images.
//!
//! ```text
//! habf build --positives pos.txt --negatives neg.txt --bits-per-key 10 --out filter.bin
//! habf build --positives pos.txt --negatives neg.txt --shards 4 --threads 2 --out filter.bin
//! habf query filter.bin <key> [<key>…]        # exit 0 if all maybe-present
//! habf query filter.bin --replay queries.txt  # replay keys from a file
//! habf adapt filter.bin --positives pos.txt --queries queries.txt --out adapted.bin
//! habf inspect filter.bin
//! ```
//!
//! `--shards N` (with N > 1) builds a sharded filter: keys are partitioned
//! by a splitter hash and the shards are built in parallel over
//! `--threads` workers (0 = auto). Query, adapt, and inspect load either
//! format.
//!
//! `adapt` closes the FP-feedback loop offline: it replays a query log
//! against the filter, records every false positive (a query key that is
//! not in `--positives` yet passes the filter) into a cost-decayed
//! [`FpLog`], and — if the waste crosses `--threshold` — mines the log
//! into negative hints and rebuilds the filter at its current space
//! budget. The same loop runs as `query --replay FILE --adapt`, mirroring
//! how a server would adapt in place.
//!
//! `--negatives` and `--queries` lines are either `key` (cost 1) or
//! `key<TAB>cost`. Keys are one per line, newline-delimited, matched as
//! raw bytes.

use habf::core::{AdaptPolicy, FHabf, FpLog, Habf, HabfConfig, ShardedConfig, ShardedHabf};
use habf::filters::Filter;
use std::io::{BufRead, Write};
use std::process::ExitCode;

const USAGE: &str = "usage:\n  habf build --positives FILE --negatives FILE [--bits-per-key F] \
         [--fast] [--seed N] [--shards N] [--threads N] [--out FILE]\n  habf query FILTER \
[KEY…] [--replay FILE] [--adapt --positives FILE [--out FILE]]\n  habf adapt FILTER \
--positives FILE --queries FILE [--out FILE] [--threshold F] [--max-hints N] [--seed N]\n  \
habf inspect FILTER";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn read_lines(path: &str) -> Vec<Vec<u8>> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("habf: cannot open {path}: {e}");
        std::process::exit(1)
    });
    std::io::BufReader::new(file)
        .split(b'\n')
        .map(|l| l.expect("read line"))
        .filter(|l| !l.is_empty())
        .collect()
}

fn parse_negatives(path: &str) -> Vec<(Vec<u8>, f64)> {
    read_lines(path)
        .into_iter()
        .map(|line| {
            // `key\tcost` or bare `key`.
            match line.iter().rposition(|&b| b == b'\t') {
                Some(tab) => {
                    let cost = std::str::from_utf8(&line[tab + 1..])
                        .ok()
                        .and_then(|s| s.trim().parse::<f64>().ok());
                    match cost {
                        Some(c) if c.is_finite() && c > 0.0 => (line[..tab].to_vec(), c),
                        _ => (line, 1.0), // tab was part of the key
                    }
                }
                None => (line, 1.0),
            }
        })
        .collect()
}

fn cmd_build(args: &[String]) -> ExitCode {
    let mut positives_path = None;
    let mut negatives_path = None;
    let mut bits_per_key = 10.0f64;
    let mut fast = false;
    let mut seed = 0x4841_4246u64;
    let mut shards = 1usize;
    let mut threads = 0usize;
    let mut out = "filter.bin".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--positives" => positives_path = Some(val()),
            "--negatives" => negatives_path = Some(val()),
            "--bits-per-key" => bits_per_key = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--out" => out = val(),
            "--fast" => fast = true,
            _ => usage(),
        }
    }
    if shards == 0 {
        eprintln!("habf: --shards must be at least 1");
        return ExitCode::FAILURE;
    }
    let (Some(pp), Some(np)) = (positives_path, negatives_path) else {
        usage()
    };
    let positives = read_lines(&pp);
    if positives.is_empty() {
        eprintln!("habf: {pp} holds no keys");
        return ExitCode::FAILURE;
    }
    let negatives = parse_negatives(&np);
    let mut cfg = HabfConfig::with_total_bits((positives.len() as f64 * bits_per_key) as usize);
    cfg.seed = seed;

    let (image, stats_line) = if shards > 1 {
        let mut scfg = ShardedConfig::new(shards, cfg);
        scfg.threads = threads;
        if fast {
            let f = ShardedHabf::<FHabf>::build_par(&positives, &negatives, &scfg);
            (
                f.to_bytes(),
                format!(
                    "Sharded-f-HABF: {} positives across {} shards",
                    positives.len(),
                    f.shard_count()
                ),
            )
        } else {
            let f = ShardedHabf::<Habf>::build_par(&positives, &negatives, &scfg);
            (
                f.to_bytes(),
                format!(
                    "Sharded-HABF: {} positives across {} shards",
                    positives.len(),
                    f.shard_count()
                ),
            )
        }
    } else if fast {
        let f = FHabf::build(&positives, &negatives, &cfg);
        let s = f.stats().clone();
        (
            f.to_bytes(),
            format!(
                "f-HABF: {} positives, {} negatives, {} collision keys, {} optimized",
                s.positives, s.negatives, s.initial_collision_keys, s.optimized
            ),
        )
    } else {
        let f = Habf::build(&positives, &negatives, &cfg);
        let s = f.stats().clone();
        (
            f.to_bytes(),
            format!(
                "HABF: {} positives, {} negatives, {} collision keys, {} optimized, {} failed",
                s.positives, s.negatives, s.initial_collision_keys, s.optimized, s.failed
            ),
        )
    };
    if let Err(e) = std::fs::write(&out, &image) {
        eprintln!("habf: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{stats_line}");
    println!("wrote {} bytes to {out}", image.len());
    ExitCode::SUCCESS
}

/// A loaded filter image of any persisted kind, kept concretely typed so
/// `adapt` can rebuild it at the same geometry.
enum AnyFilter {
    Habf(Habf),
    FHabf(FHabf),
    Sharded(ShardedHabf<Habf>),
    ShardedFast(ShardedHabf<FHabf>),
}

impl AnyFilter {
    /// Loads any persisted filter kind — unsharded or sharded, HABF or
    /// f-HABF (the magics and kind bytes disambiguate).
    fn load(path: &str) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        if let Ok(f) = Habf::from_bytes(&bytes) {
            return Ok(AnyFilter::Habf(f));
        }
        if let Ok(f) = FHabf::from_bytes(&bytes) {
            return Ok(AnyFilter::FHabf(f));
        }
        if let Ok(f) = ShardedHabf::<Habf>::from_bytes(&bytes) {
            return Ok(AnyFilter::Sharded(f));
        }
        ShardedHabf::<FHabf>::from_bytes(&bytes)
            .map(AnyFilter::ShardedFast)
            .map_err(|e| format!("{path}: {e}"))
    }

    fn as_filter(&self) -> &dyn Filter {
        match self {
            AnyFilter::Habf(f) => f,
            AnyFilter::FHabf(f) => f,
            AnyFilter::Sharded(f) => f,
            AnyFilter::ShardedFast(f) => f,
        }
    }

    /// Re-runs TPJO over `positives` with `negatives` as the costed hint
    /// set, at the loaded filter's exact geometry (space, `k`, cell width,
    /// shard routing) — geometry preservation keeps the replayed false
    /// positives valid evidence against the rebuilt filter.
    fn rebuild(&mut self, positives: &[Vec<u8>], negatives: &[(Vec<u8>, f64)], seed: u64) {
        match self {
            AnyFilter::Habf(f) => f.rebuild(positives, negatives, seed),
            AnyFilter::FHabf(f) => f.rebuild(positives, negatives, seed),
            AnyFilter::Sharded(f) => f.rebuild_in_place(positives, negatives, seed),
            AnyFilter::ShardedFast(f) => f.rebuild_in_place(positives, negatives, seed),
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        match self {
            AnyFilter::Habf(f) => f.to_bytes(),
            AnyFilter::FHabf(f) => f.to_bytes(),
            AnyFilter::Sharded(f) => f.to_bytes(),
            AnyFilter::ShardedFast(f) => f.to_bytes(),
        }
    }
}

/// Replays the costed `queries` against `filter`, logging every false
/// positive (passes the filter, absent from `positives`); if the decayed
/// waste reaches `threshold`, mines the log and rebuilds the filter.
/// Returns `(fps_before, fps_after, rebuilt)`.
fn adapt_filter(
    filter: &mut AnyFilter,
    positives: &[Vec<u8>],
    queries: &[(Vec<u8>, f64)],
    threshold: f64,
    max_hints: usize,
    seed: u64,
) -> (u64, u64, bool) {
    let members: std::collections::HashSet<&[u8]> = positives.iter().map(Vec::as_slice).collect();
    let mut log = FpLog::new(queries.len().max(1), 1.0);
    let mut policy = AdaptPolicy::cost_threshold(threshold);
    policy.min_fp_events = 1;
    for (key, cost) in queries {
        log.note_lookup();
        if !members.contains(key.as_slice()) && filter.as_filter().contains(key) {
            log.record(key, *cost);
        }
    }
    let fps_before = log.window_fp_events();
    if !policy.should_rebuild(&log) {
        return (fps_before, fps_before, false);
    }
    let mined = log.mine_hints(max_hints);
    filter.rebuild(positives, &mined, seed);
    let fps_after = queries
        .iter()
        .filter(|(key, _)| !members.contains(key.as_slice()) && filter.as_filter().contains(key))
        .count() as u64;
    (fps_before, fps_after, true)
}

fn cmd_adapt(args: &[String]) -> ExitCode {
    let [path, flags @ ..] = args else { usage() };
    let mut positives_path = None;
    let mut queries_path = None;
    let mut out = format!("{path}.adapted");
    let mut threshold = 1.0f64;
    let mut max_hints = 65_536usize;
    let mut seed = 0x4841_4246u64;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--positives" => positives_path = Some(val()),
            "--queries" => queries_path = Some(val()),
            "--out" => out = val(),
            "--threshold" => threshold = val().parse().unwrap_or_else(|_| usage()),
            "--max-hints" => max_hints = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let (Some(pp), Some(qp)) = (positives_path, queries_path) else {
        usage()
    };
    let mut filter = match AnyFilter::load(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("habf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let positives = read_lines(&pp);
    if positives.is_empty() {
        eprintln!("habf: {pp} holds no keys");
        return ExitCode::FAILURE;
    }
    let queries = parse_negatives(&qp);
    let (before, after, rebuilt) = adapt_filter(
        &mut filter,
        &positives,
        &queries,
        threshold,
        max_hints,
        seed,
    );
    println!(
        "replayed {} queries: {before} false positives",
        queries.len()
    );
    if !rebuilt {
        println!("below threshold {threshold}: no adaptation needed");
        return ExitCode::SUCCESS;
    }
    let image = filter.to_bytes();
    if let Err(e) = std::fs::write(&out, &image) {
        eprintln!("habf: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("rebuilt with mined hints: {after} false positives remain");
    println!("wrote {} bytes to {out}", image.len());
    ExitCode::SUCCESS
}

fn cmd_query(args: &[String]) -> ExitCode {
    let [path, rest @ ..] = args else { usage() };
    let mut keys: Vec<Vec<u8>> = Vec::new();
    let mut replay = None;
    let mut adapt = false;
    let mut positives_path = None;
    let mut out = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--replay" => replay = Some(val()),
            "--adapt" => adapt = true,
            "--positives" => positives_path = Some(val()),
            "--out" => out = Some(val()),
            // A mistyped flag must not be silently queried as a key
            // (keys that genuinely start with "--" go through --replay).
            s if s.starts_with("--") => usage(),
            _ => keys.push(arg.clone().into_bytes()),
        }
    }
    if let Some(replay) = &replay {
        keys.extend(read_lines(replay));
    }
    if keys.is_empty() {
        usage();
    }
    let filter = match AnyFilter::load(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("habf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let mut all_present = true;
    for key in &keys {
        let hit = filter.as_filter().contains(key);
        all_present &= hit;
        let _ = writeln!(
            lock,
            "{}\t{}",
            if hit { "maybe" } else { "no" },
            String::from_utf8_lossy(key)
        );
    }
    drop(lock);
    if adapt {
        // `query --replay FILE --adapt` is `habf adapt` with the replayed
        // keys as the query log (unit cost each).
        let Some(pp) = positives_path else {
            eprintln!("habf: --adapt needs --positives");
            return ExitCode::FAILURE;
        };
        let out = out.unwrap_or_else(|| format!("{path}.adapted"));
        let Some(replay) = replay else {
            eprintln!("habf: --adapt needs --replay");
            return ExitCode::FAILURE;
        };
        let adapt_args = vec![
            path.clone(),
            "--positives".into(),
            pp,
            "--queries".into(),
            replay,
            "--out".into(),
            out,
        ];
        return cmd_adapt(&adapt_args);
    }
    if all_present {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_inspect(args: &[String]) -> ExitCode {
    let [path] = args else { usage() };
    match AnyFilter::load(path) {
        Ok(any) => {
            let f = any.as_filter();
            println!("kind        : {}", f.name());
            println!(
                "space       : {} bits ({} KB)",
                f.space_bits(),
                f.space_bits() / 8 / 1024
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("habf: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--help` anywhere (including `habf build --help`) prints usage and
    // succeeds. Query keys are raw bytes, but a literal "--help" key is far
    // less likely than a user probing for help.
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") || args[0] == "help" {
        if args.is_empty() {
            usage();
        }
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (cmd, rest) = args.split_first().expect("non-empty args");
    match cmd.as_str() {
        "build" => cmd_build(rest),
        "query" => cmd_query(rest),
        "adapt" => cmd_adapt(rest),
        "inspect" => cmd_inspect(rest),
        _ => usage(),
    }
}
