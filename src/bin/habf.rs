//! `habf` — command-line front end for building, querying, inspecting,
//! and adapting filter images of any registered kind.
//!
//! ```text
//! habf filters                                 # list registered filter ids
//! habf build --filter habf --positives pos.txt --negatives neg.txt --out filter.bin
//! habf build --filter sharded-fhabf --shards 4 --threads 2 --positives pos.txt …
//! habf query filter.bin <key> [<key>…]        # exit 0 if all maybe-present
//! habf query filter.bin --replay queries.txt  # replay keys from a file
//! habf adapt filter.bin --positives pos.txt --queries queries.txt --out adapted.bin
//! habf insert stack.bin key1 key2 --out grown.bin   # growable filters only
//! habf inspect filter.bin
//! habf migrate old.bin --out new.bin          # any format -> aligned v2 container
//! habf serve --listen 127.0.0.1:7700 --tenant users=filter.bin,pos.txt
//! habf client 127.0.0.1:7700 query users key1 key2
//! ```
//!
//! Every subcommand dispatches through the filter registry
//! (`habf::core::registry`): `build` resolves `--filter <id>` to a
//! [`FilterSpec`], `query`/`adapt`/`inspect` open any image
//! **memory-mapped** — a current aligned `HABC` v2 container is served
//! zero-copy straight from the page cache (`inspect` reports
//! `backing: mmap` plus the frame table); v1 containers and legacy
//! `HABF`/`HABS` images load through the copying adapters — and work
//! against the object-safe [`DynFilter`] surface, so a newly registered
//! filter is immediately buildable, queryable, and inspectable here with
//! no CLI changes. `migrate` rewrites any loadable image as a v2
//! container.
//!
//! The legacy flags remain as defaults: `--fast` selects `fhabf` and
//! `--shards N` (N > 1) the sharded variant when `--filter` is not given
//! explicitly.
//!
//! `adapt` closes the FP-feedback loop offline: it replays a query log
//! against the filter, records every false positive (a query key that is
//! not in `--positives` yet passes the filter) into a cost-decayed
//! [`FpLog`], and — if the waste crosses `--threshold` — mines the log
//! into negative hints and rebuilds the filter at its current geometry
//! through the [`habf::core::Rebuildable`] capability. Filters without
//! that capability (e.g. `bloom`, `xor`) are refused with a clear
//! message. The same loop runs as `query --replay FILE --adapt`,
//! mirroring how a server would adapt in place.
//!
//! `--negatives` and `--queries` lines are either `key` (cost 1) or
//! `key<TAB>cost`. Keys are one per line, newline-delimited, matched as
//! raw bytes; `#`-prefixed lines are comments.
//!
//! `serve` runs the multi-tenant filter server (`habf::serve`): each
//! `--tenant NAME=FILTER[,POSITIVES]` opens a filter image mmap'd as
//! one tenant (with `POSITIVES` attached, the tenant accepts `rebuild`
//! requests that hot-swap an adaptation-rebuilt filter in place).
//! `client` speaks the length-framed wire protocol: batched `query`
//! (one `maybe`/`no` line per key, like the offline `query`), `feedback`
//! FP events, `stats`, `rebuild`, `ping`, and `shutdown` (honored only
//! by servers started with `--allow-shutdown`).

use habf::core::registry::{self, LoadedFilter};
use habf::core::{AdaptPolicy, BuildInput, DynFilter, FilterSpec, FpLog};
use std::io::{BufRead, Write};
use std::process::ExitCode;

const USAGE: &str = "usage:\n  habf filters\n  habf build --positives FILE [--negatives FILE] \
[--filter ID] [--bits-per-key F]\n         [--fast] [--seed N] [--shards N] [--threads N] \
[--out FILE]\n  habf query FILTER [KEY…] [--replay FILE] [--adapt --positives FILE [--out FILE]]\n  \
habf adapt FILTER --positives FILE --queries FILE [--out FILE] [--threshold F] \
[--max-hints N] [--seed N]\n  habf insert FILTER [KEY…] [--keys FILE] [--out FILE]\n  \
habf inspect FILTER\n  habf migrate FILTER [--out FILE]\n  \
habf serve --listen ADDR --tenant NAME=FILTER[,POSITIVES] [--tenant …]\n         \
[--threshold F] [--max-connections N] [--model reactor|threads] [--workers N]\n         \
[--allow-shutdown]\n  \
habf client ADDR ping\n  habf client ADDR query TENANT [KEY…] [--replay FILE]\n  \
habf client ADDR feedback TENANT (--queries FILE | KEY COST)\n  \
habf client ADDR stats TENANT\n  habf client ADDR rebuild TENANT [--seed N] [--max-hints N]\n  \
habf client ADDR insert TENANT [KEY…] [--keys FILE]\n  \
habf client ADDR shutdown";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Reads one key per line, skipping blank lines and `#` comments, so
/// replay/positive files can carry annotations without becoming keys.
fn read_lines(path: &str) -> Vec<Vec<u8>> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("habf: cannot open {path}: {e}");
        std::process::exit(1)
    });
    std::io::BufReader::new(file)
        .split(b'\n')
        .map(|l| l.expect("read line"))
        .filter(|l| !l.is_empty() && l[0] != b'#')
        .collect()
}

fn parse_negatives(path: &str) -> Vec<(Vec<u8>, f64)> {
    read_lines(path)
        .into_iter()
        .map(|line| {
            // `key\tcost` or bare `key`.
            match line.iter().rposition(|&b| b == b'\t') {
                Some(tab) => {
                    let cost = std::str::from_utf8(&line[tab + 1..])
                        .ok()
                        .and_then(|s| s.trim().parse::<f64>().ok());
                    match cost {
                        Some(c) if c.is_finite() && c > 0.0 => (line[..tab].to_vec(), c),
                        _ => (line, 1.0), // tab was part of the key
                    }
                }
                None => (line, 1.0),
            }
        })
        .collect()
}

fn cmd_filters() -> ExitCode {
    for entry in registry::entries() {
        println!("{}\t{}", entry.id, entry.summary);
    }
    ExitCode::SUCCESS
}

fn cmd_build(args: &[String]) -> ExitCode {
    let mut positives_path = None;
    let mut negatives_path = None;
    let mut filter_id: Option<String> = None;
    let mut bits_per_key = 10.0f64;
    let mut fast = false;
    let mut seed = 0x4841_4246u64;
    let mut shards = 1usize;
    let mut threads = 0usize;
    let mut out = "filter.bin".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--positives" => positives_path = Some(val()),
            "--negatives" => negatives_path = Some(val()),
            "--filter" => filter_id = Some(val()),
            "--bits-per-key" => bits_per_key = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--out" => out = val(),
            "--fast" => fast = true,
            _ => usage(),
        }
    }
    if shards == 0 {
        eprintln!("habf: --shards must be at least 1");
        return ExitCode::FAILURE;
    }
    // `--fast` is a default-picker for when no id is named; silently
    // ignoring it next to an explicit `--filter` would build something
    // other than what the operator asked for.
    if fast && filter_id.is_some() {
        eprintln!("habf: --fast conflicts with --filter; name the id directly (e.g. fhabf)");
        return ExitCode::FAILURE;
    }
    // The legacy flags double as defaults when no id is named.
    let id = filter_id.unwrap_or_else(|| {
        let base = if fast { "fhabf" } else { "habf" };
        if shards > 1 {
            format!("sharded-{base}")
        } else {
            base.to_string()
        }
    });
    let Some(spec) = FilterSpec::by_id(&id) else {
        eprintln!(
            "habf: unknown filter id {id:?}; registered: {}",
            registry::ids().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let spec = spec
        .bits_per_key(bits_per_key)
        .seed(seed)
        .shards(shards)
        .threads(threads);
    let Some(pp) = positives_path else { usage() };
    let positives = read_lines(&pp);
    if positives.is_empty() {
        eprintln!("habf: {pp} holds no keys");
        return ExitCode::FAILURE;
    }
    let negatives = negatives_path
        .map(|np| parse_negatives(&np))
        .unwrap_or_default();
    let input = BuildInput::from_members(&positives).with_costed_negatives(&negatives);
    let filter = match spec.build(&input) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("habf: cannot build {id:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let image = filter.to_container_bytes();
    if let Err(e) = std::fs::write(&out, &image) {
        eprintln!("habf: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{} ({}): {} positives, {} negatives, {} bits",
        filter.name(),
        filter.filter_id(),
        positives.len(),
        negatives.len(),
        filter.space_bits()
    );
    for (label, value) in filter.metadata() {
        println!("  {label}: {value}");
    }
    println!("wrote {} bytes to {out}", image.len());
    ExitCode::SUCCESS
}

/// Opens a filter image memory-mapped: a v2 container serves its word
/// payload straight from the page cache (zero copies); v1 and legacy
/// images decode through the copying adapters, unchanged.
fn load_filter(path: &str) -> Result<LoadedFilter, String> {
    registry::load_mmap(path).map_err(|e| format!("{path}: {e}"))
}

/// Replays the costed `queries` against `filter`, logging every false
/// positive (passes the filter, absent from `positives`); if the decayed
/// waste reaches `threshold`, mines the log and rebuilds the filter
/// through its [`habf::core::Rebuildable`] capability at its exact
/// geometry. Returns `(fps_before, fps_after, rebuilt)`, or an error for
/// filters without the capability.
fn adapt_filter(
    filter: &mut dyn DynFilter,
    positives: &[Vec<u8>],
    queries: &[(Vec<u8>, f64)],
    threshold: f64,
    max_hints: usize,
    seed: u64,
) -> Result<(u64, u64, bool), String> {
    if filter.as_rebuildable().is_none() {
        return Err(format!(
            "filter {:?} does not support adaptation (no rebuild capability)",
            filter.filter_id()
        ));
    }
    let members: std::collections::HashSet<&[u8]> = positives.iter().map(Vec::as_slice).collect();
    let mut log = FpLog::new(queries.len().max(1), 1.0);
    let mut policy = AdaptPolicy::cost_threshold(threshold);
    policy.min_fp_events = 1;
    for (key, cost) in queries {
        log.note_lookup();
        if !members.contains(key.as_slice()) && filter.contains(key) {
            log.record(key, *cost);
        }
    }
    let fps_before = log.window_fp_events();
    if !policy.should_rebuild(&log) {
        return Ok((fps_before, fps_before, false));
    }
    let mined = log.mine_hints(max_hints);
    let input = BuildInput::from_members(positives).with_hints(&mined);
    filter
        .as_rebuildable()
        .expect("capability checked above")
        .rebuild(&input, seed)
        .map_err(|e| format!("rebuild failed: {e}"))?;
    let fps_after = queries
        .iter()
        .filter(|(key, _)| !members.contains(key.as_slice()) && filter.contains(key))
        .count() as u64;
    Ok((fps_before, fps_after, true))
}

fn cmd_adapt(args: &[String]) -> ExitCode {
    let [path, flags @ ..] = args else { usage() };
    let mut positives_path = None;
    let mut queries_path = None;
    let mut out = format!("{path}.adapted");
    let mut threshold = 1.0f64;
    let mut max_hints = 65_536usize;
    let mut seed = 0x4841_4246u64;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--positives" => positives_path = Some(val()),
            "--queries" => queries_path = Some(val()),
            "--out" => out = val(),
            "--threshold" => threshold = val().parse().unwrap_or_else(|_| usage()),
            "--max-hints" => max_hints = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let (Some(pp), Some(qp)) = (positives_path, queries_path) else {
        usage()
    };
    let mut loaded = match load_filter(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("habf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let positives = read_lines(&pp);
    if positives.is_empty() {
        eprintln!("habf: {pp} holds no keys");
        return ExitCode::FAILURE;
    }
    let queries = parse_negatives(&qp);
    let (before, after, rebuilt) = match adapt_filter(
        loaded.filter.as_mut(),
        &positives,
        &queries,
        threshold,
        max_hints,
        seed,
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("habf: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replayed {} queries: {before} false positives",
        queries.len()
    );
    if !rebuilt {
        println!("below threshold {threshold}: no adaptation needed");
        return ExitCode::SUCCESS;
    }
    // Preserve the input's on-disk format: a legacy image stays a legacy
    // image (its payload IS the legacy encoding) and a v1 container stays
    // v1, so older readers keep loading the adapted output; only current
    // (v2) containers re-wrap through the current writer.
    let image = match (loaded.format, loaded.version) {
        (habf::core::ImageFormat::Container, habf::core::persist::CONTAINER_VERSION_V1) => {
            loaded.filter.to_container_bytes_v1()
        }
        (habf::core::ImageFormat::Container, _) => loaded.filter.to_container_bytes(),
        _ => {
            let mut payload = Vec::new();
            loaded.filter.write_payload(&mut payload);
            payload
        }
    };
    if let Err(e) = std::fs::write(&out, &image) {
        eprintln!("habf: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("rebuilt with mined hints: {after} false positives remain");
    println!("wrote {} bytes to {out}", image.len());
    ExitCode::SUCCESS
}

/// Inserts keys into a growable filter image and writes the grown image
/// back, format-preserving (like `adapt`). Filters without the grow
/// capability — everything but the tiered stacks — are refused with a
/// clear message instead of silently breaking their zero-FN contract.
fn cmd_insert(args: &[String]) -> ExitCode {
    let [path, rest @ ..] = args else { usage() };
    let mut keys: Vec<Vec<u8>> = Vec::new();
    let mut out = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--keys" => keys.extend(read_lines(&val())),
            "--out" => out = Some(val()),
            s if s.starts_with("--") => usage(),
            _ => keys.push(arg.clone().into_bytes()),
        }
    }
    if keys.is_empty() {
        usage();
    }
    let out = out.unwrap_or_else(|| path.clone());
    let mut loaded = match load_filter(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("habf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(growable) = loaded.filter.as_growable() else {
        eprintln!(
            "habf: filter {:?} cannot grow past its design capacity \
             (rebuild it, or use --filter scalable-habf)",
            loaded.filter.filter_id()
        );
        return ExitCode::FAILURE;
    };
    for key in &keys {
        growable.insert(key);
    }
    // Preserve the input's on-disk format, as `adapt` does.
    let image = match (loaded.format, loaded.version) {
        (habf::core::ImageFormat::Container, habf::core::persist::CONTAINER_VERSION_V1) => {
            loaded.filter.to_container_bytes_v1()
        }
        (habf::core::ImageFormat::Container, _) => loaded.filter.to_container_bytes(),
        _ => {
            let mut payload = Vec::new();
            loaded.filter.write_payload(&mut payload);
            payload
        }
    };
    if let Err(e) = std::fs::write(&out, &image) {
        eprintln!("habf: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "inserted {} keys: {} generations, saturation {:.4}",
        keys.len(),
        loaded.filter.generations(),
        loaded.filter.saturation()
    );
    println!("wrote {} bytes to {out}", image.len());
    ExitCode::SUCCESS
}

fn cmd_query(args: &[String]) -> ExitCode {
    let [path, rest @ ..] = args else { usage() };
    let mut keys: Vec<Vec<u8>> = Vec::new();
    let mut replay = None;
    let mut adapt = false;
    let mut positives_path = None;
    let mut out = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--replay" => replay = Some(val()),
            "--adapt" => adapt = true,
            "--positives" => positives_path = Some(val()),
            "--out" => out = Some(val()),
            // A mistyped flag must not be silently queried as a key
            // (keys that genuinely start with "--" go through --replay).
            s if s.starts_with("--") => usage(),
            _ => keys.push(arg.clone().into_bytes()),
        }
    }
    if let Some(replay) = &replay {
        keys.extend(read_lines(replay));
    }
    if keys.is_empty() {
        // An empty (or all-comment) replay file is a valid no-op run,
        // not a usage error — and a rate over zero keys and ~zero
        // elapsed time would print as NaN/inf Mops.
        if replay.is_some() {
            eprintln!("0 keys replayed");
            return ExitCode::SUCCESS;
        }
        usage();
    }
    let loaded = match load_filter(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("habf: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Filters exposing the batch capability answer the whole replay in
    // one prefetch-pipelined pass; the rest take the scalar path.
    let key_slices: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    let probe_start = std::time::Instant::now();
    let (answers, path_name): (Vec<bool>, &str) = match loaded.filter.as_batch() {
        Some(batch) => (batch.contains_batch(&key_slices), "batch pipeline"),
        None => (
            key_slices
                .iter()
                .map(|k| loaded.filter.contains(k))
                .collect(),
            "scalar",
        ),
    };
    let probe_elapsed = probe_start.elapsed();
    // Replays are throughput runs: report the probe rate on stderr so
    // stdout stays a clean per-key answer stream for scripts.
    if replay.is_some() {
        // Clamp the divisor: sub-nanosecond replays must not print inf.
        let mops = keys.len() as f64 / probe_elapsed.as_secs_f64().max(1e-9) / 1e6;
        eprintln!(
            "probed {} keys in {:.1} ms ({mops:.1} Mops, {path_name})",
            keys.len(),
            probe_elapsed.as_secs_f64() * 1e3
        );
    }
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let mut all_present = true;
    for (key, &hit) in keys.iter().zip(&answers) {
        all_present &= hit;
        let _ = writeln!(
            lock,
            "{}\t{}",
            if hit { "maybe" } else { "no" },
            String::from_utf8_lossy(key)
        );
    }
    drop(lock);
    if adapt {
        // `query --replay FILE --adapt` is `habf adapt` with the replayed
        // keys as the query log (unit cost each).
        let Some(pp) = positives_path else {
            eprintln!("habf: --adapt needs --positives");
            return ExitCode::FAILURE;
        };
        let out = out.unwrap_or_else(|| format!("{path}.adapted"));
        let Some(replay) = replay else {
            eprintln!("habf: --adapt needs --replay");
            return ExitCode::FAILURE;
        };
        let adapt_args = vec![
            path.clone(),
            "--positives".into(),
            pp,
            "--queries".into(),
            replay,
            "--out".into(),
            out,
        ];
        return cmd_adapt(&adapt_args);
    }
    if all_present {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_inspect(args: &[String]) -> ExitCode {
    let [path] = args else { usage() };
    // One mapping serves both the filter load and the frame-table print —
    // no second read of the image, and both views describe the same bytes.
    let image = match habf::util::ImageBytes::open(path) {
        Ok(image) => std::sync::Arc::new(image),
        Err(e) => {
            eprintln!("habf: cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match registry::load_shared(&image).map_err(|e| format!("{path}: {e}")) {
        Ok(loaded) => {
            use std::fmt::Write as _;
            let f = loaded.filter.as_ref();
            let mut text = String::new();
            let _ = writeln!(
                text,
                "format      : {} (v{})",
                loaded.format.describe(),
                loaded.version
            );
            let _ = writeln!(text, "filter id   : {}", f.filter_id());
            let _ = writeln!(text, "kind        : {}", f.name());
            let _ = writeln!(text, "backing     : {}", f.backing().describe());
            let _ = writeln!(
                text,
                "space       : {} bits ({} KB)",
                f.space_bits(),
                f.space_bits() / 8 / 1024
            );
            for (label, value) in f.metadata() {
                let _ = writeln!(text, "{label:<12}: {value}");
            }
            // The v2 frame table: absolute offset and size of every word
            // frame, so operators can verify 8-byte alignment. Sharded
            // images lay frames out as [bloom, cells] per shard, giving
            // the per-shard payload offsets.
            {
                match habf::core::persist::frame_table(image.as_bytes()) {
                    Ok(Some((payload_offset, frames))) => {
                        let _ = writeln!(
                            text,
                            "frames      : {} (payload at byte {payload_offset})",
                            frames.len()
                        );
                        let sharded = f.filter_id().starts_with("sharded-");
                        let tiered = f.filter_id() == "scalable-habf";
                        for (i, fr) in frames.iter().enumerate() {
                            let abs = payload_offset + fr.offset;
                            let label = if sharded {
                                format!(
                                    "shard {} {}",
                                    i / 2,
                                    if i % 2 == 0 { "bloom" } else { "cells" }
                                )
                            } else if tiered {
                                format!(
                                    "tier {} {}",
                                    i / 2,
                                    if i % 2 == 0 { "bloom" } else { "cells" }
                                )
                            } else if i == 0 {
                                "words".to_string()
                            } else {
                                format!("words[{i}]")
                            };
                            let _ = writeln!(
                                text,
                                "  frame {i:<3}: offset {abs:>10} ({}8-aligned)  {:>9} words  {label}",
                                if abs % 8 == 0 { "" } else { "NOT " },
                                fr.words
                            );
                        }
                    }
                    Ok(None) => {}
                    Err(e) => eprintln!("habf: frame table unreadable: {e}"),
                }
            }
            // One tolerant write: inspect is routinely piped into grep -q,
            // which may close the pipe before the frame table drains.
            let _ = std::io::Write::write_all(&mut std::io::stdout(), text.as_bytes());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("habf: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Rewrites any loadable image (legacy `HABF`/`HABS`, container v1 or v2)
/// as a current aligned v2 container, ready for zero-copy mmap serving.
fn cmd_migrate(args: &[String]) -> ExitCode {
    let [path, flags @ ..] = args else { usage() };
    let mut out = format!("{path}.v2");
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    let loaded = match load_filter(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("habf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let image = loaded.filter.to_container_bytes();
    if let Err(e) = std::fs::write(&out, &image) {
        eprintln!("habf: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    // Tolerant writes: migrate is piped into grep in CI smoke steps.
    let text = format!(
        "migrated {} (v{}) -> HABC container (v{})\n{} ({}): {} bits, wrote {} bytes to {out}\n",
        loaded.format.describe(),
        loaded.version,
        habf::core::persist::CONTAINER_VERSION,
        loaded.filter.name(),
        loaded.filter.filter_id(),
        loaded.filter.space_bits(),
        image.len()
    );
    let _ = std::io::Write::write_all(&mut std::io::stdout(), text.as_bytes());
    ExitCode::SUCCESS
}

/// Starts the multi-tenant filter server: every `--tenant
/// NAME=FILTER[,POSITIVES]` opens a filter image through the zero-copy
/// mmap loader as one served tenant. Blocks until a permitted
/// `shutdown` frame (or the process is killed).
fn cmd_serve(args: &[String]) -> ExitCode {
    use habf::core::TenantStore;
    use habf::serve::{Server, ServerConfig, TenantTable};

    let mut listen = "127.0.0.1:7700".to_string();
    let mut tenant_specs: Vec<String> = Vec::new();
    let mut threshold = 100.0f64;
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--listen" => listen = val(),
            "--tenant" => tenant_specs.push(val()),
            "--threshold" => threshold = val().parse().unwrap_or_else(|_| usage()),
            "--max-connections" => {
                config.max_connections = val().parse().unwrap_or_else(|_| usage());
            }
            "--model" => config.model = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => config.workers = val().parse().unwrap_or_else(|_| usage()),
            "--allow-shutdown" => config.allow_shutdown = true,
            _ => usage(),
        }
    }
    if tenant_specs.is_empty() {
        usage();
    }
    let tenants = std::sync::Arc::new(TenantTable::new());
    for spec in &tenant_specs {
        // NAME=FILTER[,POSITIVES]
        let Some((name, paths)) = spec.split_once('=') else {
            eprintln!("habf: --tenant wants NAME=FILTER[,POSITIVES], got {spec:?}");
            return ExitCode::FAILURE;
        };
        let (filter_path, positives_path) = match paths.split_once(',') {
            Some((f, p)) => (f, Some(p)),
            None => (paths, None),
        };
        let policy = AdaptPolicy::cost_threshold(threshold);
        let store = match TenantStore::open(name, filter_path, policy) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("habf: tenant {name}: cannot open {filter_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let store = match positives_path {
            Some(pp) => store.with_members(read_lines(pp)),
            None => store,
        };
        let rebuilds = if store.can_rebuild() {
            "rebuildable"
        } else {
            "query-only"
        };
        println!("tenant {name}: {filter_path} ({rebuilds})");
        tenants.add(store);
    }
    println!("serving model: {}", config.model.name());
    let server = match Server::bind(&listen[..], tenants, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("habf: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The address stays the last token of this line: `habf` wrappers
    // (and tests/cli.rs) parse it from the `serving ... on ` prefix.
    match server.local_addr() {
        Ok(addr) => println!("serving {} tenants on {addr}", tenant_specs.len()),
        Err(_) => println!("serving {} tenants on {listen}", tenant_specs.len()),
    }
    server.run();
    println!("server stopped");
    ExitCode::SUCCESS
}

/// Speaks the wire protocol to a running `habf serve`.
fn cmd_client(args: &[String]) -> ExitCode {
    use habf::serve::Client;

    let [addr, cmd, rest @ ..] = args else {
        usage()
    };
    let mut client = match Client::connect(&addr[..], std::time::Duration::from_secs(10)) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("habf: cannot connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match cmd.as_str() {
        "ping" => client.ping(b"habf").map(|()| {
            println!("pong");
            ExitCode::SUCCESS
        }),
        "query" => {
            let [tenant, key_args @ ..] = rest else {
                usage()
            };
            let mut keys: Vec<Vec<u8>> = Vec::new();
            let mut it = key_args.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--replay" => {
                        let path = it.next().cloned().unwrap_or_else(|| usage());
                        keys.extend(read_lines(&path));
                    }
                    s if s.starts_with("--") => usage(),
                    _ => keys.push(arg.clone().into_bytes()),
                }
            }
            if keys.is_empty() {
                eprintln!("0 keys queried");
                return ExitCode::SUCCESS;
            }
            client.query_pipelined(tenant, &keys, 4096).map(|answers| {
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                let mut all_present = true;
                for (key, &hit) in keys.iter().zip(&answers) {
                    all_present &= hit;
                    let _ = writeln!(
                        lock,
                        "{}\t{}",
                        if hit { "maybe" } else { "no" },
                        String::from_utf8_lossy(key)
                    );
                }
                if all_present {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            })
        }
        "feedback" => {
            let (tenant, events): (&String, Vec<(Vec<u8>, f64)>) = match rest {
                [tenant, flag, path] if flag == "--queries" => (tenant, parse_negatives(path)),
                [tenant, key, cost] => {
                    let cost: f64 = cost.parse().unwrap_or_else(|_| usage());
                    (tenant, vec![(key.clone().into_bytes(), cost)])
                }
                _ => usage(),
            };
            client.feedback(tenant, &events).map(|accepted| {
                println!("accepted {accepted} feedback events");
                ExitCode::SUCCESS
            })
        }
        "stats" => {
            let [tenant] = rest else { usage() };
            client.stats(tenant).map(|stats| {
                println!("{stats}");
                ExitCode::SUCCESS
            })
        }
        "rebuild" => {
            let [tenant, flags @ ..] = rest else { usage() };
            let mut seed = 0x4841_4246u64;
            let mut max_hints = 65_536u32;
            let mut it = flags.iter();
            while let Some(flag) = it.next() {
                let mut val = || it.next().cloned().unwrap_or_else(|| usage());
                match flag.as_str() {
                    "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
                    "--max-hints" => max_hints = val().parse().unwrap_or_else(|_| usage()),
                    _ => usage(),
                }
            }
            client
                .rebuild(tenant, seed, max_hints)
                .map(|(hints, generation)| {
                    println!("rebuilt with {hints} mined hints; now generation {generation}");
                    ExitCode::SUCCESS
                })
        }
        "insert" => {
            let [tenant, key_args @ ..] = rest else {
                usage()
            };
            let mut keys: Vec<Vec<u8>> = Vec::new();
            let mut it = key_args.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--keys" => {
                        let path = it.next().cloned().unwrap_or_else(|| usage());
                        keys.extend(read_lines(&path));
                    }
                    s if s.starts_with("--") => usage(),
                    _ => keys.push(arg.clone().into_bytes()),
                }
            }
            if keys.is_empty() {
                eprintln!("0 keys inserted");
                return ExitCode::SUCCESS;
            }
            client
                .insert(tenant, &keys)
                .map(|(accepted, tiers, saturation)| {
                    println!("inserted {accepted} keys: {tiers} tiers, saturation {saturation:.4}");
                    ExitCode::SUCCESS
                })
        }
        "shutdown" => client.shutdown().map(|()| {
            println!("server stopping");
            ExitCode::SUCCESS
        }),
        _ => usage(),
    };
    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("habf: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--help` anywhere (including `habf build --help`) prints usage and
    // succeeds. Query keys are raw bytes, but a literal "--help" key is far
    // less likely than a user probing for help.
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") || args[0] == "help" {
        if args.is_empty() {
            usage();
        }
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (cmd, rest) = args.split_first().expect("non-empty args");
    match cmd.as_str() {
        "filters" => cmd_filters(),
        "build" => cmd_build(rest),
        "query" => cmd_query(rest),
        "adapt" => cmd_adapt(rest),
        "insert" => cmd_insert(rest),
        "inspect" => cmd_inspect(rest),
        "migrate" => cmd_migrate(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        _ => usage(),
    }
}
