//! End-to-end LSM integration: the paper's motivating application wired
//! through the real crates.

use habf::lsm::{FilterKind, Lsm, LsmConfig};
use habf::util::Xoshiro256;
use habf::workloads::ZipfSampler;

fn key(i: usize) -> Vec<u8> {
    format!("row:{i:09}").into_bytes()
}

fn ghost(i: usize) -> Vec<u8> {
    format!("ghost:{i:09}").into_bytes()
}

fn populate(filter: FilterKind, n: usize, hints: Vec<(Vec<u8>, f64)>) -> Lsm {
    let mut db = Lsm::new(LsmConfig {
        memtable_capacity: 8_192,
        level_fanout: 3,
        filter,
    });
    db.set_negative_hints(hints);
    for i in 0..n {
        db.put(key(i), format!("v{i}").into_bytes());
    }
    db.flush();
    db.reset_io_stats();
    db
}

#[test]
fn durability_across_compactions() {
    let mut db = populate(FilterKind::Bloom { bits_per_key: 10.0 }, 30_000, vec![]);
    for i in (0..30_000).step_by(7) {
        assert_eq!(db.get(&key(i)), Some(format!("v{i}").into_bytes()));
    }
    assert!(db.depth() >= 1);
}

#[test]
fn habf_filters_reduce_weighted_miss_cost() {
    // Hot missing keys with Zipf traffic, mined into hints.
    let sampler = ZipfSampler::new(4_000, 1.2);
    let mut rng = Xoshiro256::new(3);
    let mut freq = vec![0u32; 4_000];
    for _ in 0..60_000 {
        freq[sampler.sample(&mut rng)] += 1;
    }
    let hints: Vec<(Vec<u8>, f64)> = freq
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| (ghost(i), f64::from(f)))
        .collect();

    let mut bloom_db = populate(
        FilterKind::Bloom { bits_per_key: 10.0 },
        24_000,
        hints.clone(),
    );
    let mut habf_db = populate(FilterKind::Habf { bits_per_key: 10.0 }, 24_000, hints);

    // Replay a fresh window of the same traffic (misses only).
    let mut rng = Xoshiro256::new(4);
    for _ in 0..30_000 {
        let k = ghost(sampler.sample(&mut rng));
        assert_eq!(bloom_db.get(&k), None);
        assert_eq!(habf_db.get(&k), None);
    }
    let b = bloom_db.io_stats();
    let h = habf_db.io_stats();
    assert!(
        h.wasted_weighted_cost <= b.wasted_weighted_cost,
        "HABF wasted weighted cost {} above Bloom {}",
        h.wasted_weighted_cost,
        b.wasted_weighted_cost
    );
}

#[test]
fn point_lookups_return_latest_version() {
    let mut db = populate(FilterKind::FHabf { bits_per_key: 10.0 }, 10_000, vec![]);
    // Overwrite a slice of keys; new versions must win through compaction.
    for i in 0..2_000 {
        db.put(key(i), b"NEW".to_vec());
    }
    db.flush();
    for i in 0..2_000 {
        assert_eq!(db.get(&key(i)), Some(b"NEW".to_vec()), "key {i}");
    }
    for i in 2_000..2_100 {
        assert_eq!(db.get(&key(i)), Some(format!("v{i}").into_bytes()));
    }
}

#[test]
fn filter_memory_is_accounted() {
    let db = populate(FilterKind::Habf { bits_per_key: 10.0 }, 20_000, vec![]);
    let bits = db.filter_bits();
    // Roughly bits_per_key × entries, within rounding and duplicates.
    assert!(bits > 20_000 * 6, "filter bits {bits} suspiciously low");
    assert!(bits < 20_000 * 16, "filter bits {bits} suspiciously high");
}
