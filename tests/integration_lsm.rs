//! End-to-end LSM integration: the paper's motivating application wired
//! through the real crates.

use habf::lsm::{AdaptConfig, FilterSpec, Lsm, LsmConfig};
use habf::util::Xoshiro256;
use habf::workloads::{DriftConfig, ZipfSampler};

fn key(i: usize) -> Vec<u8> {
    format!("row:{i:09}").into_bytes()
}

fn ghost(i: usize) -> Vec<u8> {
    format!("ghost:{i:09}").into_bytes()
}

fn populate(filter: Option<FilterSpec>, n: usize, hints: Vec<(Vec<u8>, f64)>) -> Lsm {
    let mut db = Lsm::new(LsmConfig {
        memtable_capacity: 8_192,
        level_fanout: 3,
        filter,
    });
    db.set_negative_hints(hints).expect("finite hint costs");
    for i in 0..n {
        db.put(key(i), format!("v{i}").into_bytes());
    }
    db.flush();
    db.reset_io_stats();
    db
}

#[test]
fn durability_across_compactions() {
    let mut db = populate(Some(FilterSpec::bloom().bits_per_key(10.0)), 30_000, vec![]);
    for i in (0..30_000).step_by(7) {
        assert_eq!(db.get(&key(i)), Some(format!("v{i}").into_bytes()));
    }
    assert!(db.depth() >= 1);
}

#[test]
fn habf_filters_reduce_weighted_miss_cost() {
    // Hot missing keys with Zipf traffic, mined into hints.
    let sampler = ZipfSampler::new(4_000, 1.2);
    let mut rng = Xoshiro256::new(3);
    let mut freq = vec![0u32; 4_000];
    for _ in 0..60_000 {
        freq[sampler.sample(&mut rng)] += 1;
    }
    let hints: Vec<(Vec<u8>, f64)> = freq
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| (ghost(i), f64::from(f)))
        .collect();

    let mut bloom_db = populate(
        Some(FilterSpec::bloom().bits_per_key(10.0)),
        24_000,
        hints.clone(),
    );
    let mut habf_db = populate(Some(FilterSpec::habf().bits_per_key(10.0)), 24_000, hints);

    // Replay a fresh window of the same traffic (misses only).
    let mut rng = Xoshiro256::new(4);
    for _ in 0..30_000 {
        let k = ghost(sampler.sample(&mut rng));
        assert_eq!(bloom_db.get(&k), None);
        assert_eq!(habf_db.get(&k), None);
    }
    let b = bloom_db.io_stats();
    let h = habf_db.io_stats();
    assert!(
        h.wasted_weighted_cost <= b.wasted_weighted_cost,
        "HABF wasted weighted cost {} above Bloom {}",
        h.wasted_weighted_cost,
        b.wasted_weighted_cost
    );
}

/// The adaptation acceptance criterion end-to-end through the façade: on
/// the drifting-hot-negatives workload at equal total bits, the adaptive
/// store's wasted weighted cost after the drift point is strictly lower
/// than the static-hint build's, with at least one rebuild recorded.
#[test]
fn adaptive_store_beats_static_hints_after_drift() {
    let workload = DriftConfig {
        universe: 8_000,
        hot: 250,
        phases: 2,
        queries_per_phase: 10_000,
        hot_fraction: 0.9,
        skewness: 1.0,
        seed: 99,
    }
    .generate();
    // Both stores know only phase 0's costly misses at build time.
    let phase0 = workload.observed_costs(0);
    let build = |adaptive: bool| -> Lsm {
        let mut db = populate(
            Some(FilterSpec::habf().bits_per_key(12.0)),
            8_000,
            phase0.clone(),
        );
        if adaptive {
            // Tune the trigger to this test's traffic volume: ~10k
            // post-drift queries at a sub-percent FPR make ~25 weighted
            // units a clear "the hot set moved" signal.
            db.enable_adaptation(AdaptConfig {
                policy: habf::lsm::AdaptPolicy::cost_threshold(25.0),
                ..AdaptConfig::default()
            });
        }
        db
    };
    let mut static_db = build(false);
    let mut adaptive_db = build(true);
    for phase in 0..2 {
        if phase == 1 {
            // Measure from the drift point only.
            static_db.reset_io_stats();
            adaptive_db.reset_io_stats();
        }
        for key in workload.phase_keys(phase) {
            assert_eq!(static_db.get(key), None);
            assert_eq!(adaptive_db.get(key), None);
        }
    }
    let s = static_db.io_stats();
    let a = adaptive_db.io_stats();
    assert_eq!(s.rebuilds, 0, "static store must not rebuild");
    assert!(a.rebuilds >= 1, "no rebuild triggered after the drift");
    assert!(
        a.wasted_weighted_cost < s.wasted_weighted_cost,
        "adaptive {} !< static {} post-drift",
        a.wasted_weighted_cost,
        s.wasted_weighted_cost
    );
    // Equal budget, and members survive every rebuild.
    assert_eq!(static_db.filter_bits(), adaptive_db.filter_bits());
    for i in (0..8_000).step_by(97) {
        assert_eq!(adaptive_db.get(&key(i)), Some(format!("v{i}").into_bytes()));
    }
}

#[test]
fn point_lookups_return_latest_version() {
    let mut db = populate(Some(FilterSpec::fhabf().bits_per_key(10.0)), 10_000, vec![]);
    // Overwrite a slice of keys; new versions must win through compaction.
    for i in 0..2_000 {
        db.put(key(i), b"NEW".to_vec());
    }
    db.flush();
    for i in 0..2_000 {
        assert_eq!(db.get(&key(i)), Some(b"NEW".to_vec()), "key {i}");
    }
    for i in 2_000..2_100 {
        assert_eq!(db.get(&key(i)), Some(format!("v{i}").into_bytes()));
    }
}

#[test]
fn filter_memory_is_accounted() {
    let db = populate(Some(FilterSpec::habf().bits_per_key(10.0)), 20_000, vec![]);
    let bits = db.filter_bits();
    // Roughly bits_per_key × entries, within rounding and duplicates.
    assert!(bits > 20_000 * 6, "filter bits {bits} suspiciously low");
    assert!(bits < 20_000 * 16, "filter bits {bits} suspiciously high");
}
