//! Workspace smoke test: the façade crate alone is enough to build an HABF
//! end-to-end, uphold the zero-false-negative contract, and ship the filter
//! through its persistence format.
//!
//! This intentionally exercises only `habf::prelude` + re-exported modules,
//! pinning the public surface the workspace promises downstream users.

use habf::prelude::{FHabf, Filter, Habf, HabfConfig};

type Keys = Vec<Vec<u8>>;
type CostedKeys = Vec<(Vec<u8>, f64)>;

fn workload() -> (Keys, CostedKeys) {
    let positives: Vec<Vec<u8>> = (0..2_000)
        .map(|i| format!("user:{i:05}").into_bytes())
        .collect();
    // Cost-skewed known negatives: a few expensive keys dominate.
    let negatives: Vec<(Vec<u8>, f64)> = (0..2_000)
        .map(|i| {
            let cost = if i % 50 == 0 { 100.0 } else { 1.0 };
            (format!("bot:{i:05}").into_bytes(), cost)
        })
        .collect();
    (positives, negatives)
}

#[test]
fn facade_builds_habf_with_zero_false_negatives_and_persist_roundtrip() {
    let (positives, negatives) = workload();
    let cfg = HabfConfig::with_total_bits(positives.len() * 10);
    let filter = Habf::build(&positives, &negatives, &cfg);

    // Zero false negatives: every member answers "maybe".
    for key in &positives {
        assert!(filter.contains(key), "member dropped: {key:?}");
    }

    // Round-trip through persist: same answers on members and negatives.
    let image = filter.to_bytes();
    let shipped = Habf::from_bytes(&image).expect("image loads back");
    assert_eq!(filter.space_bits(), shipped.space_bits());
    for key in &positives {
        assert!(shipped.contains(key), "member dropped after round-trip");
    }
    for (key, _) in &negatives {
        assert_eq!(
            filter.contains(key),
            shipped.contains(key),
            "answer changed after round-trip for {key:?}"
        );
    }
}

#[test]
fn facade_builds_fhabf_with_zero_false_negatives_and_persist_roundtrip() {
    let (positives, negatives) = workload();
    let cfg = HabfConfig::with_total_bits(positives.len() * 10);
    let filter = FHabf::build(&positives, &negatives, &cfg);

    for key in &positives {
        assert!(filter.contains(key), "member dropped: {key:?}");
    }

    let shipped = FHabf::from_bytes(&filter.to_bytes()).expect("image loads back");
    for key in &positives {
        assert!(shipped.contains(key), "member dropped after round-trip");
    }
    for (key, _) in &negatives {
        assert_eq!(filter.contains(key), shipped.contains(key));
    }
}

#[test]
fn facade_reexports_cover_the_workspace_map() {
    // One symbol per member crate: a rename or dropped re-export here is a
    // breaking change to the façade and should be a deliberate decision.
    let _ = habf::core::MAX_K;
    let _ = habf::hashing::FAMILY_SIZE;
    let _ = habf::filters::optimal_k(10.0);
    let _ = habf::util::SplitMix64::new(1);
    let _ = habf::workloads::ZipfSampler::new(16, 1.0);
    let _ = habf::lsm::LsmConfig::default();
    // The unified filter API rides the core re-export (pinned in detail
    // by tests/api_surface.rs).
    let _ = habf::core::registry::ids();
}
