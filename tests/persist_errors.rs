//! Persistence error paths: untrusted bytes must produce *typed* errors,
//! never panics — truncation, bad magic, wrong container version,
//! unknown filter ids, frame misalignment, and arbitrary byte mutations,
//! across every registered filter id in **both** container versions (the
//! aligned v2 and the opaque v1) and both legacy formats, through the
//! copying loader *and* the zero-copy shared-image loader.

use habf::core::registry;
use habf::core::{BuildInput, FilterSpec, PersistError};
use proptest::prelude::*;

/// One small container image per registered id (plus the legacy images),
/// used as the mutation corpus. Built once — the proptests below run
/// hundreds of cases, and every filter construction is a full build.
fn corpus() -> &'static [(String, Vec<u8>)] {
    static CORPUS: std::sync::OnceLock<Vec<(String, Vec<u8>)>> = std::sync::OnceLock::new();
    CORPUS.get_or_init(build_corpus)
}

fn build_corpus() -> Vec<(String, Vec<u8>)> {
    let members: Vec<Vec<u8>> = (0..64).map(|i| format!("m:{i}").into_bytes()).collect();
    let negatives: Vec<(Vec<u8>, f64)> = (0..64)
        .map(|i| (format!("n:{i}").into_bytes(), 1.0 + (i % 5) as f64))
        .collect();
    let input = BuildInput::from_members(&members).with_costed_negatives(&negatives);
    let mut images: Vec<(String, Vec<u8>)> = registry::ids()
        .into_iter()
        .flat_map(|id| {
            let filter = FilterSpec::by_id(id)
                .expect("registered")
                .bits_per_key(12.0)
                .shards(2)
                .build(&input)
                .unwrap_or_else(|e| panic!("{id}: {e}"));
            [
                // The current aligned envelope (word frames, zero-copy
                // loadable) and the previous opaque envelope: both must
                // be equally hardened against mutation.
                (format!("container-v2:{id}"), filter.to_container_bytes()),
                (format!("container-v1:{id}"), filter.to_container_bytes_v1()),
            ]
        })
        .collect();
    // Legacy formats go through the same loader and must be as hardened.
    let cfg = habf::prelude::HabfConfig::with_total_bits(64 * 12);
    let habf = habf::prelude::Habf::build(&members, &negatives, &cfg);
    images.push(("legacy:habf".into(), habf.to_bytes()));
    let scfg = habf::prelude::ShardedConfig::new(2, cfg);
    let sharded =
        habf::prelude::ShardedHabf::<habf::prelude::Habf>::build_par(&members, &negatives, &scfg);
    images.push(("legacy:sharded".into(), sharded.to_bytes()));
    // A grown multi-tier stack: one container holding a frame set per
    // tier. Inside the corpus it rides every generic test — truncation
    // at every prefix lands *between* tier frame sets too, and random
    // mutations hit the per-tier counters.
    let mut scalable = FilterSpec::scalable_habf()
        .bits_per_key(12.0)
        .build(&input)
        .expect("scalable builds");
    {
        let growable = scalable.as_growable().expect("scalable grows");
        for i in 0..256 {
            growable.insert(format!("late:{i}").as_bytes());
        }
    }
    assert!(scalable.generations() > 1, "corpus stack must be grown");
    images.push((
        "container-v2:scalable-habf-grown".into(),
        scalable.to_container_bytes(),
    ));
    images.push((
        "container-v1:scalable-habf-grown".into(),
        scalable.to_container_bytes_v1(),
    ));
    images
}

#[test]
fn truncations_at_every_prefix_error_not_panic() {
    for (name, image) in corpus() {
        for cut in 0..image.len() {
            let result = registry::load(&image[..cut]);
            assert!(result.is_err(), "{name}: cut at {cut} loaded");
            // The zero-copy shared-image loader must be exactly as
            // hardened: truncated frames are typed errors, never a
            // mis-sliced view.
            let result = registry::load_bytes(image[..cut].to_vec());
            assert!(result.is_err(), "{name}: cut at {cut} loaded shared");
        }
        assert!(registry::load(image).is_ok(), "{name}: pristine image");
        assert!(
            registry::load_bytes(image.clone()).is_ok(),
            "{name}: pristine shared image"
        );
    }
}

/// Zero-length and sub-header (1..8-byte) filter files are the on-disk
/// face of truncation: a crashed writer or an empty `touch`ed path. The
/// mmap loader must hand back `PersistError::Truncated` for every such
/// image of every registered id — never a panic, never a mis-sliced
/// view over a too-short mapping.
#[test]
fn sub_header_files_are_typed_truncations_through_mmap() {
    use habf::core::registry::OpenError;

    let dir = std::env::temp_dir().join(format!("habf-persist-tiny-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    for (name, image) in corpus() {
        let path = dir.join(name.replace(':', "_"));
        for cut in 0..=8.min(image.len() - 1) {
            std::fs::write(&path, &image[..cut]).expect("write prefix");
            let err = registry::load_mmap(&path)
                .err()
                .unwrap_or_else(|| panic!("{name}: {cut}-byte file loaded"));
            assert!(
                matches!(err, OpenError::Persist(PersistError::Truncated)),
                "{name}: {cut}-byte file gave {err:?}, want Truncated"
            );
            // The in-memory loaders agree byte for byte with the file path.
            assert_eq!(
                registry::load(&image[..cut]).err(),
                Some(PersistError::Truncated),
                "{name}: cut {cut}"
            );
            assert_eq!(
                registry::load_bytes(image[..cut].to_vec()).err(),
                Some(PersistError::Truncated),
                "{name}: cut {cut} shared"
            );
        }
        // The same path with the full image mmaps clean — the errors
        // above were about the bytes, not the file plumbing.
        std::fs::write(&path, image).expect("write image");
        assert!(registry::load_mmap(&path).is_ok(), "{name}: pristine mmap");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_magic_wrong_version_and_unknown_id_are_typed() {
    for (name, image) in corpus() {
        // Magic damage.
        let mut bad = image.clone();
        bad[0] = b'Z';
        assert_eq!(
            registry::load(&bad).err(),
            Some(PersistError::BadMagic),
            "{name}"
        );
        // Version damage (byte 4 in every format).
        let mut bad = image.clone();
        bad[4] = 250;
        assert_eq!(
            registry::load(&bad).err(),
            Some(PersistError::BadVersion(250)),
            "{name}"
        );
        // Trailing garbage.
        let mut bad = image.clone();
        bad.push(0);
        assert!(registry::load(&bad).is_err(), "{name}: trailing byte");
    }

    // A well-formed container naming an id the registry does not serve.
    let (_, image) = &corpus()[0];
    let decoded = habf::core::persist::decode_container(image).expect("container");
    let mut unknown = Vec::new();
    habf::core::persist::encode_container("future-filter", decoded.payload, &mut unknown);
    assert_eq!(
        registry::load(&unknown).err(),
        Some(PersistError::UnknownFilterId("future-filter".into()))
    );
}

/// Tier-count corruption in a grown multi-tier image: the count is
/// validated against the tier cap before any tier decodes, so a lying
/// count is a typed error through both loaders — never a panic, and
/// never a count-sized allocation.
#[test]
fn corrupt_tier_counts_in_grown_images_are_typed() {
    let mut checked = 0;
    for (name, image) in corpus() {
        if !name.contains("scalable-habf-grown") {
            continue;
        }
        let tiers = registry::load(image)
            .expect("pristine image")
            .filter
            .generations() as u32;
        assert!(tiers > 1, "{name}: corpus stack must be grown");
        // The growth-parameter block ends with `max_tiers u32 ||
        // tier_count u32`; find that pair near the head of the image
        // and lie about the count.
        let needle: Vec<u8> = 16u32
            .to_le_bytes()
            .iter()
            .chain(tiers.to_le_bytes().iter())
            .copied()
            .collect();
        let at = image
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap_or_else(|| panic!("{name}: growth params not found"));
        for lie in [0u32, u32::MAX, 65u32] {
            let mut bad = image.clone();
            bad[at + 4..at + 8].copy_from_slice(&lie.to_le_bytes());
            assert!(
                matches!(registry::load(&bad).err(), Some(PersistError::Corrupt(_))),
                "{name}: tier count {lie} loaded"
            );
            assert!(
                registry::load_bytes(bad).is_err(),
                "{name}: tier count {lie} loaded shared"
            );
        }
        // Claiming one tier fewer than the frames hold is trailing
        // garbage, not a shorter filter.
        let mut bad = image.clone();
        bad[at + 4..at + 8].copy_from_slice(&(tiers - 1).to_le_bytes());
        assert!(
            registry::load(&bad).is_err(),
            "{name}: undercounted tiers loaded"
        );
        checked += 1;
    }
    assert_eq!(checked, 2, "both container versions must be exercised");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary single-byte mutations: load must return `Ok` or a typed
    /// error, and anything that loads must answer queries without
    /// panicking (a flipped payload byte may legally produce a different
    /// but well-formed filter).
    #[test]
    fn single_byte_mutations_never_panic(
        // Wide index range + modulo: a corpus that grows with future
        // registry entries stays fully covered without edits here.
        image_idx in 0usize..4096,
        offset_frac in 0.0f64..1.0,
        xor_with in 1u8..=255,
    ) {
        let corpus = corpus();
        let (name, image) = &corpus[image_idx % corpus.len()];
        let mut mutated = image.clone();
        let offset = ((mutated.len() - 1) as f64 * offset_frac) as usize;
        mutated[offset] ^= xor_with;
        if let Ok(loaded) = registry::load(&mutated) {
            // Loadable mutants must still be servable and re-encodable.
            let _ = loaded.filter.contains(b"probe:key");
            let _ = loaded.filter.space_bits();
            let _ = loaded.filter.to_container_bytes();
            let _ = name;
        }
        // The zero-copy loader sees the same mutant: a corrupt frame
        // table must come back as a typed error (e.g. Misaligned), and a
        // loadable mutant must serve through its views without panicking.
        if let Ok(loaded) = registry::load_bytes(mutated) {
            let _ = loaded.filter.contains(b"probe:key");
            let _ = loaded.filter.to_container_bytes();
        }
    }

    /// Arbitrary byte soup — including inputs forced to start with each
    /// valid magic — errors, never panics.
    #[test]
    fn random_bytes_error_not_panic(mut bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = registry::load(&bytes);
        // Force each known magic over the same soup so the per-format
        // decoders see adversarial headers, not just BadMagic exits.
        for magic in [b"HABF", b"HABS", b"HABC"] {
            if bytes.len() >= 4 {
                bytes[..4].copy_from_slice(magic);
            }
            let _ = registry::load(&bytes);
        }
    }
}
