//! Differential storage-engine proptests: for **every** `habf filters`
//! id, a filter built once and written as an aligned v2 container must be
//! indistinguishable whether it is decoded the copying way
//! (`registry::load`) or served as a zero-copy mmap view
//! (`registry::load_mmap`) — byte-identical `write_payload`, identical
//! answers on 10k mixed probes per case.

use habf::core::registry;
use habf::core::{BuildInput, DynFilter, FilterSpec, LoadedFilter};
use habf::util::Backing;
use proptest::prelude::*;

/// One filter per registered id, built once and persisted once (builds
/// are full TPJO runs; the proptests below run dozens of cases).
struct CorpusEntry {
    id: String,
    built: Box<dyn DynFilter>,
    owned: LoadedFilter,
    viewed: LoadedFilter,
}

fn corpus() -> &'static [CorpusEntry] {
    static CORPUS: std::sync::OnceLock<Vec<CorpusEntry>> = std::sync::OnceLock::new();
    CORPUS.get_or_init(|| {
        let members: Vec<Vec<u8>> = (0..4_000)
            .map(|i| format!("member:{i:07}").into_bytes())
            .collect();
        let negatives: Vec<(Vec<u8>, f64)> = (0..4_000)
            .map(|i| (format!("absent:{i:07}").into_bytes(), 1.0 + (i % 7) as f64))
            .collect();
        let input = BuildInput::from_members(&members).with_costed_negatives(&negatives);
        let dir =
            std::env::temp_dir().join(format!("habf-proptest-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        registry::ids()
            .into_iter()
            .map(|id| {
                let built = FilterSpec::by_id(id)
                    .expect("registered")
                    .bits_per_key(12.0)
                    .shards(3)
                    .build(&input)
                    .unwrap_or_else(|e| panic!("{id}: {e}"));
                let image = built.to_container_bytes();
                let path = dir.join(format!("{id}.habc"));
                std::fs::write(&path, &image).expect("write image");
                let owned = registry::load(&image).unwrap_or_else(|e| panic!("{id}: {e}"));
                let viewed = registry::load_mmap(&path).unwrap_or_else(|e| panic!("{id}: {e}"));
                assert_eq!(owned.filter.backing(), Backing::Owned, "{id}");
                assert_ne!(viewed.filter.backing(), Backing::Owned, "{id}");
                CorpusEntry {
                    id: id.to_string(),
                    built,
                    owned,
                    viewed,
                }
            })
            .collect()
    })
}

/// Deterministic mixed probe stream: members (in and out of range),
/// near-miss keys sharing the member prefix, and arbitrary byte keys.
fn probe_key(seed: u64, i: u64) -> Vec<u8> {
    let x = habf::hashing::xxhash::xxh64(&i.to_le_bytes(), seed);
    match x % 4 {
        0 => format!("member:{:07}", x % 5_000).into_bytes(),
        1 => format!("absent:{:07}", x % 5_000).into_bytes(),
        2 => format!("member:{x}").into_bytes(),
        _ => x.to_le_bytes().to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 10k mixed probes per case: the mmap view and the owned decode of
    /// the same image answer identically for every registered id.
    #[test]
    fn view_and_owned_answer_identically_on_mixed_probes(seed in any::<u64>()) {
        for entry in corpus() {
            for i in 0..10_000u64 {
                let key = probe_key(seed, i);
                let owned = entry.owned.filter.contains(&key);
                let viewed = entry.viewed.filter.contains(&key);
                prop_assert_eq!(owned, viewed, "{}: probe {} diverged", &entry.id, i);
                prop_assert_eq!(
                    entry.built.contains(&key), owned,
                    "{}: decode changed an answer", &entry.id
                );
            }
        }
    }
}

/// The view loses nothing in re-serialization: both loads re-encode the
/// **v1 payload** byte-identically to the built filter's, and the v2
/// re-encode matches the image on disk.
#[test]
fn view_and_owned_reencode_byte_identically() {
    for entry in corpus() {
        let mut built_payload = Vec::new();
        entry.built.write_payload(&mut built_payload);
        for (label, loaded) in [("owned", &entry.owned), ("view", &entry.viewed)] {
            let mut payload = Vec::new();
            loaded.filter.write_payload(&mut payload);
            assert_eq!(
                payload, built_payload,
                "{}: {label} write_payload drifted from the built filter",
                entry.id
            );
            assert_eq!(
                loaded.filter.to_container_bytes(),
                entry.built.to_container_bytes(),
                "{}: {label} v2 re-encode drifted",
                entry.id
            );
        }
    }
}
