//! Latency-regression guards: the orderings Fig 12 relies on, plus the
//! "learned backup filter must not explode its hash count" regression
//! (a tiny false-negative set once produced a backup filter asking for
//! ~120k probes per query — `optimal_k` is clamped now).

use habf::core::{FHabf, Habf, HabfConfig};
use habf::filters::{Filter, LearnedBloomFilter, LogisticRegression, SandwichedLearnedBloomFilter};
use habf::workloads::{metrics, ShallaConfig};

#[test]
fn learned_filter_queries_stay_microsecond_scale() {
    // A highly separable corpus makes the classifier's false-negative set
    // tiny, which is exactly the regression trigger.
    let ds = ShallaConfig::with_scale(0.01).generate();
    let budget = ds.positives.len() * 40; // huge budget, tiny backup set
    for filter in [
        Box::new(LearnedBloomFilter::build(
            &ds.positives,
            &ds.negatives,
            budget,
            Box::new(LogisticRegression::new(10, 2, 0.15, 3)),
        )) as Box<dyn Filter>,
        Box::new(SandwichedLearnedBloomFilter::build(
            &ds.positives,
            &ds.negatives,
            budget,
            Box::new(LogisticRegression::new(10, 2, 0.15, 3)),
        )),
    ] {
        let probe: Vec<Vec<u8>> = ds.negatives.iter().take(5_000).cloned().collect();
        let ns = metrics::query_latency_ns(|k| filter.contains(k), &probe);
        assert!(
            ns < 20_000.0,
            "{} query latency {ns:.0} ns/key — k explosion regression",
            filter.name()
        );
    }
}

#[test]
fn fhabf_queries_faster_than_habf() {
    let ds = ShallaConfig::with_scale(0.01).generate();
    let negatives: Vec<(&[u8], f64)> = ds.negatives.iter().map(|k| (k.as_slice(), 1.0)).collect();
    let cfg = HabfConfig::with_total_bits(ds.positives.len() * 10);
    let habf = Habf::build(&ds.positives, &negatives, &cfg);
    let fhabf = FHabf::build(&ds.positives, &negatives, &cfg);
    let probe: Vec<Vec<u8>> = ds
        .positives
        .iter()
        .take(10_000)
        .chain(ds.negatives.iter().take(10_000))
        .cloned()
        .collect();
    // Warm up, then measure three times and take the minimum to de-noise.
    let mut h = f64::INFINITY;
    let mut f = f64::INFINITY;
    for _ in 0..3 {
        h = h.min(metrics::query_latency_ns(|k| habf.contains(k), &probe));
        f = f.min(metrics::query_latency_ns(|k| fhabf.contains(k), &probe));
    }
    // The paper reports ~5× (Fig 12c); we only pin the ordering with slack
    // because CI machines are noisy.
    assert!(
        f < h * 1.5,
        "f-HABF ({f:.0} ns) not faster than HABF ({h:.0} ns)"
    );
}
