//! The Fig 8 claim as a regression test: the Section IV upper bound on the
//! optimized FPR dominates the measured FPR of a real build.

use habf::core::{theory, Habf, HabfConfig};
use habf::filters::Filter;
use habf::workloads::{metrics, ShallaConfig};

fn measured_vs_bound(k: usize, bits_per_key: f64) -> (f64, f64) {
    let ds = ShallaConfig::with_scale(0.005).generate();
    let m = (bits_per_key * ds.positives.len() as f64) as usize;
    let cfg = HabfConfig {
        total_bits: m + m / 4,
        delta: 0.25,
        k,
        cell_bits: 5,
        seed: 0xF18,
        requeue_cap: 3,
    };
    let (m_real, omega) = cfg.split();
    let negatives: Vec<(&[u8], f64)> = ds
        .negatives
        .iter()
        .map(|key| (key.as_slice(), 1.0))
        .collect();
    let filter = Habf::build(&ds.positives, &negatives, &cfg);
    let measured = metrics::fpr(|key| filter.contains(key), &ds.negatives);
    let bound = theory::f_star_upper_bound(
        k,
        m_real as f64 / ds.positives.len() as f64,
        ds.negatives.len(),
        m_real,
        omega,
        cfg.usable_hashes(),
    );
    (measured, bound)
}

#[test]
fn fig8a_bound_holds_across_k() {
    for k in [2usize, 4, 6, 8] {
        let (measured, bound) = measured_vs_bound(k, 10.0);
        assert!(
            measured <= bound,
            "k={k}: measured {measured} above bound {bound}"
        );
    }
}

#[test]
fn fig8b_bound_holds_across_b() {
    for b in [5.0f64, 8.0, 11.0] {
        let (measured, bound) = measured_vs_bound(4, b);
        assert!(
            measured <= bound,
            "b={b}: measured {measured} above bound {bound}"
        );
    }
}

#[test]
fn bound_is_not_vacuous() {
    // The bound must genuinely improve on the unoptimized Bloom FPR for a
    // loaded configuration — otherwise Fig 8 would be trivially true.
    let (_, bound) = measured_vs_bound(4, 6.0);
    let plain = theory::bloom_fpr(4, 6.0);
    assert!(
        bound < plain,
        "bound {bound} does not improve on plain Bloom {plain}"
    );
}
