//! The zero-copy acceptance criterion, asserted with the tracking
//! allocator: `registry::load_mmap` of a v2 container performs **zero
//! payload-word copies** — the heap it allocates while opening is bounded
//! by header/scaffolding size and does not scale with the image's word
//! payload, for every registered filter id.
//!
//! This test binary installs [`TrackingAllocator`] globally (kept out of
//! the other test binaries, where it would tax every allocation), builds
//! a large-enough filter per id that scaffolding noise cannot hide a
//! payload copy, and measures the bytes allocated inside the load call.

use habf::core::registry;
use habf::core::{BuildInput, FilterSpec};
use habf::util::alloc::TrackingAllocator;
use habf::util::Backing;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

#[test]
fn load_mmap_performs_zero_payload_word_copies_for_every_registered_id() {
    // 40k members at 12 bits/key ≈ 60 KB of payload words per filter —
    // three orders of magnitude above the meta/scaffolding allocations a
    // zero-copy open legitimately makes.
    let members: Vec<Vec<u8>> = (0..40_000)
        .map(|i| format!("member:{i:08}").into_bytes())
        .collect();
    let negatives: Vec<(Vec<u8>, f64)> = (0..10_000)
        .map(|i| (format!("absent:{i:08}").into_bytes(), 1.0 + (i % 5) as f64))
        .collect();
    let input = BuildInput::from_members(&members).with_costed_negatives(&negatives);
    let dir = std::env::temp_dir().join(format!("habf-zero-copy-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    for id in registry::ids() {
        let filter = FilterSpec::by_id(id)
            .expect("registered")
            .bits_per_key(12.0)
            .shards(4)
            .build(&input)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let image = filter.to_container_bytes();
        let payload_bytes = image.len();
        let path = dir.join(format!("{id}.habc"));
        std::fs::write(&path, &image).expect("write image");

        let (loaded, allocated) = TrackingAllocator::measure(|| {
            registry::load_mmap(&path).unwrap_or_else(|e| panic!("{id}: {e}"))
        });
        assert_ne!(
            loaded.filter.backing(),
            Backing::Owned,
            "{id}: load_mmap must serve a view"
        );
        // The open may allocate headers, the id string, shard Arcs, the
        // frame table — all O(shards), none O(payload). A single copied
        // word frame would blow straight through this bound.
        assert!(
            allocated < payload_bytes / 4,
            "{id}: load_mmap allocated {allocated} bytes against a \
             {payload_bytes}-byte image — a payload copy slipped in"
        );

        // The view must actually serve.
        for k in members.iter().step_by(997) {
            assert!(loaded.filter.contains(k), "{id}: view dropped a member");
        }

        // Contrast: the copying load necessarily allocates at least the
        // payload words.
        let bytes = std::fs::read(&path).expect("read image");
        let (owned, allocated_owned) =
            TrackingAllocator::measure(|| registry::load(&bytes).expect("owned load"));
        assert_eq!(owned.filter.backing(), Backing::Owned, "{id}");
        assert!(
            allocated_owned > allocated,
            "{id}: owned decode ({allocated_owned} B) should out-allocate \
             the view open ({allocated} B)"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
