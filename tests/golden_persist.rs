//! Golden serialization tests: the persist formats (the legacy unsharded
//! `HABF` image, the legacy sharded `HABS` image, and the current `HABC`
//! container for every registered filter id) are pinned by checked-in
//! fixture blobs under `tests/golden/`, so any byte-level drift — field
//! order, a header change, hash-function renumbering — fails loudly
//! instead of silently orphaning every shipped filter image.
//!
//! To regenerate after a *deliberate, versioned* format change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_persist
//! ```

use habf::core::registry;
use habf::prelude::{
    BuildInput, FHabf, Filter, FilterSpec, Habf, HabfConfig, ImageFormat, ShardedConfig,
    ShardedHabf,
};
use std::path::PathBuf;

type Workload = (Vec<Vec<u8>>, Vec<(Vec<u8>, f64)>);

/// The canonical fixture workload: small enough to keep blobs a few KB,
/// rich enough to exercise the HashExpressor (costed collisions exist).
fn workload() -> Workload {
    let positives: Vec<Vec<u8>> = (0..64)
        .map(|i| format!("golden:pos:{i}").into_bytes())
        .collect();
    let negatives: Vec<(Vec<u8>, f64)> = (0..64)
        .map(|i| (format!("golden:neg:{i}").into_bytes(), 1.0 + (i % 5) as f64))
        .collect();
    (positives, negatives)
}

fn fixture_config() -> HabfConfig {
    // The paper's defaults at 12 bits/key; the seed is the library default
    // so fixtures also pin default-seed stability.
    HabfConfig::with_total_bits(64 * 12)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `image` against the named fixture — or rewrites the fixture
/// when `GOLDEN_REGEN=1`.
fn assert_matches_fixture(name: &str, image: &[u8]) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, image).expect("write fixture");
        return;
    }
    let fixture = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        fixture, image,
        "{name}: serialized bytes drifted from the checked-in fixture; if the \
         format change is deliberate, bump the persist VERSION and regenerate \
         with GOLDEN_REGEN=1"
    );
}

#[test]
fn habf_image_is_byte_stable() {
    let (pos, neg) = workload();
    let filter = Habf::build(&pos, &neg, &fixture_config());
    let image = filter.to_bytes();
    assert_matches_fixture("habf_v1.bin", &image);

    // from_bytes(to_bytes(x)) is the identity on bytes and answers.
    let restored = Habf::from_bytes(&image).expect("fixture image loads");
    assert_eq!(restored.to_bytes(), image);
    for k in &pos {
        assert!(restored.contains(k));
    }
    for (k, _) in &neg {
        assert_eq!(restored.contains(k), filter.contains(k));
    }
}

#[test]
fn fhabf_image_is_byte_stable() {
    let (pos, neg) = workload();
    let filter = FHabf::build(&pos, &neg, &fixture_config());
    let image = filter.to_bytes();
    assert_matches_fixture("fhabf_v1.bin", &image);

    let restored = FHabf::from_bytes(&image).expect("fixture image loads");
    assert_eq!(restored.to_bytes(), image);
    for k in &pos {
        assert!(restored.contains(k));
    }
    for (k, _) in &neg {
        assert_eq!(restored.contains(k), filter.contains(k));
    }
}

#[test]
fn sharded_container_is_byte_stable() {
    let (pos, neg) = workload();
    let cfg = ShardedConfig::new(2, fixture_config());
    let filter = ShardedHabf::<Habf>::build_par(&pos, &neg, &cfg);
    let image = filter.to_bytes();
    assert_matches_fixture("sharded_habf_v1.bin", &image);

    let restored = ShardedHabf::<Habf>::from_bytes(&image).expect("fixture image loads");
    assert_eq!(restored.to_bytes(), image);
    assert_eq!(restored.shard_count(), 2);
    for k in &pos {
        assert!(restored.contains(k));
    }
    for (k, _) in &neg {
        assert_eq!(restored.contains(k), filter.contains(k));
    }
}

/// One container fixture **per envelope version** per registered filter
/// id: the v1 envelope (opaque payload, still written by
/// `to_container_bytes_v1` for pre-v2 readers), the current v2 envelope
/// (aligned word frames), and every payload codec (including the
/// baselines, which gained persistence with the container) are
/// byte-pinned.
#[test]
fn container_images_are_byte_stable_for_every_registered_id() {
    let (pos, neg) = workload();
    let input = BuildInput::from_members(&pos).with_costed_negatives(&neg);
    for id in registry::ids() {
        let filter = FilterSpec::by_id(id)
            .expect("registered")
            .total_bits(64 * 12)
            .shards(2)
            .build(&input)
            .unwrap_or_else(|e| panic!("{id}: {e}"));

        // The previous envelope stays writable and byte-identical, so
        // images shipped to pre-v2 readers never drift.
        let image_v1 = filter.to_container_bytes_v1();
        assert_matches_fixture(&format!("container_{id}_v1.bin"), &image_v1);

        // The current aligned envelope.
        let image = filter.to_container_bytes();
        assert_matches_fixture(&format!("container_{id}_v2.bin"), &image);

        for (version, bytes) in [(1u8, &image_v1), (2u8, &image)] {
            let loaded = registry::load(bytes).unwrap_or_else(|e| panic!("{id} v{version}: {e}"));
            assert_eq!(loaded.format, ImageFormat::Container, "{id} v{version}");
            assert_eq!(loaded.version, version, "{id}");
            assert_eq!(loaded.filter.filter_id(), id);
            // Re-encoding through the current writer is stable and lands
            // on the v2 bytes regardless of which version was loaded.
            assert_eq!(
                loaded.filter.to_container_bytes(),
                image,
                "{id} v{version}: re-encode"
            );
            for k in &pos {
                assert!(loaded.filter.contains(k), "{id} v{version}: member dropped");
            }
            for (k, _) in &neg {
                assert_eq!(
                    filter.contains(k),
                    loaded.filter.contains(k),
                    "{id} v{version}"
                );
            }
        }

        // The v2 image loads zero-copy through the shared-image path with
        // identical answers.
        let shared = registry::load_bytes(image.clone())
            .unwrap_or_else(|e| panic!("{id}: shared load: {e}"));
        assert_ne!(
            shared.filter.backing(),
            habf::util::Backing::Owned,
            "{id}: v2 shared load must be view-backed"
        );
        for k in pos.iter().take(16) {
            assert!(
                shared.filter.contains(k),
                "{id}: shared view dropped member"
            );
        }
    }
}

/// The pre-container fixtures must keep loading **byte-for-byte** through
/// the registry's legacy adapters — shipped images never re-serialize
/// differently, and the adapter reports the right id and format.
#[test]
fn legacy_fixtures_load_through_the_registry_adapters() {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        return; // fixtures may not exist yet during regeneration
    }
    for (fixture, id, format) in [
        ("habf_v1.bin", "habf", ImageFormat::LegacySingle),
        ("fhabf_v1.bin", "fhabf", ImageFormat::LegacySingle),
        (
            "sharded_habf_v1.bin",
            "sharded-habf",
            ImageFormat::LegacySharded,
        ),
    ] {
        let bytes = std::fs::read(golden_path(fixture)).expect("fixture");
        let loaded = registry::load(&bytes).unwrap_or_else(|e| panic!("{fixture}: {e}"));
        assert_eq!(loaded.format, format, "{fixture}");
        assert_eq!(loaded.version, 1, "{fixture}");
        assert_eq!(loaded.filter.filter_id(), id, "{fixture}");
        // The legacy image doubles as the id's container payload, so the
        // payload re-encodes to the legacy bytes exactly.
        let mut payload = Vec::new();
        loaded.filter.write_payload(&mut payload);
        assert_eq!(payload, bytes, "{fixture}: adapter altered legacy bytes");
        // And the golden workload still answers.
        let (pos, _) = workload();
        for k in &pos {
            assert!(loaded.filter.contains(k), "{fixture}: member dropped");
        }
    }
}

#[test]
fn fixtures_load_across_filter_kinds_only_where_legal() {
    // The fixtures must stay mutually exclusive: kind and magic bytes
    // prevent loading one format as another.
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        return; // fixtures may not exist yet during regeneration
    }
    let habf = std::fs::read(golden_path("habf_v1.bin")).expect("fixture");
    let fhabf = std::fs::read(golden_path("fhabf_v1.bin")).expect("fixture");
    let sharded = std::fs::read(golden_path("sharded_habf_v1.bin")).expect("fixture");
    assert!(FHabf::from_bytes(&habf).is_err());
    assert!(Habf::from_bytes(&fhabf).is_err());
    assert!(Habf::from_bytes(&sharded).is_err());
    assert!(ShardedHabf::<Habf>::from_bytes(&habf).is_err());
    assert!(ShardedHabf::<FHabf>::from_bytes(&sharded).is_err());
}
