//! Golden serialization tests: the persist formats (unsharded `HABF`
//! image and sharded `HABS` container) are pinned by checked-in fixture
//! blobs under `tests/golden/`, so any byte-level drift — field order, a
//! header change, hash-function renumbering — fails loudly instead of
//! silently orphaning every shipped filter image.
//!
//! To regenerate after a *deliberate, versioned* format change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_persist
//! ```

use habf::prelude::{FHabf, Filter, Habf, HabfConfig, ShardedConfig, ShardedHabf};
use std::path::PathBuf;

type Workload = (Vec<Vec<u8>>, Vec<(Vec<u8>, f64)>);

/// The canonical fixture workload: small enough to keep blobs a few KB,
/// rich enough to exercise the HashExpressor (costed collisions exist).
fn workload() -> Workload {
    let positives: Vec<Vec<u8>> = (0..64)
        .map(|i| format!("golden:pos:{i}").into_bytes())
        .collect();
    let negatives: Vec<(Vec<u8>, f64)> = (0..64)
        .map(|i| (format!("golden:neg:{i}").into_bytes(), 1.0 + (i % 5) as f64))
        .collect();
    (positives, negatives)
}

fn fixture_config() -> HabfConfig {
    // The paper's defaults at 12 bits/key; the seed is the library default
    // so fixtures also pin default-seed stability.
    HabfConfig::with_total_bits(64 * 12)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `image` against the named fixture — or rewrites the fixture
/// when `GOLDEN_REGEN=1`.
fn assert_matches_fixture(name: &str, image: &[u8]) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, image).expect("write fixture");
        return;
    }
    let fixture = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        fixture, image,
        "{name}: serialized bytes drifted from the checked-in fixture; if the \
         format change is deliberate, bump the persist VERSION and regenerate \
         with GOLDEN_REGEN=1"
    );
}

#[test]
fn habf_image_is_byte_stable() {
    let (pos, neg) = workload();
    let filter = Habf::build(&pos, &neg, &fixture_config());
    let image = filter.to_bytes();
    assert_matches_fixture("habf_v1.bin", &image);

    // from_bytes(to_bytes(x)) is the identity on bytes and answers.
    let restored = Habf::from_bytes(&image).expect("fixture image loads");
    assert_eq!(restored.to_bytes(), image);
    for k in &pos {
        assert!(restored.contains(k));
    }
    for (k, _) in &neg {
        assert_eq!(restored.contains(k), filter.contains(k));
    }
}

#[test]
fn fhabf_image_is_byte_stable() {
    let (pos, neg) = workload();
    let filter = FHabf::build(&pos, &neg, &fixture_config());
    let image = filter.to_bytes();
    assert_matches_fixture("fhabf_v1.bin", &image);

    let restored = FHabf::from_bytes(&image).expect("fixture image loads");
    assert_eq!(restored.to_bytes(), image);
    for k in &pos {
        assert!(restored.contains(k));
    }
    for (k, _) in &neg {
        assert_eq!(restored.contains(k), filter.contains(k));
    }
}

#[test]
fn sharded_container_is_byte_stable() {
    let (pos, neg) = workload();
    let cfg = ShardedConfig::new(2, fixture_config());
    let filter = ShardedHabf::<Habf>::build_par(&pos, &neg, &cfg);
    let image = filter.to_bytes();
    assert_matches_fixture("sharded_habf_v1.bin", &image);

    let restored = ShardedHabf::<Habf>::from_bytes(&image).expect("fixture image loads");
    assert_eq!(restored.to_bytes(), image);
    assert_eq!(restored.shard_count(), 2);
    for k in &pos {
        assert!(restored.contains(k));
    }
    for (k, _) in &neg {
        assert_eq!(restored.contains(k), filter.contains(k));
    }
}

#[test]
fn fixtures_load_across_filter_kinds_only_where_legal() {
    // The fixtures must stay mutually exclusive: kind and magic bytes
    // prevent loading one format as another.
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        return; // fixtures may not exist yet during regeneration
    }
    let habf = std::fs::read(golden_path("habf_v1.bin")).expect("fixture");
    let fhabf = std::fs::read(golden_path("fhabf_v1.bin")).expect("fixture");
    let sharded = std::fs::read(golden_path("sharded_habf_v1.bin")).expect("fixture");
    assert!(FHabf::from_bytes(&habf).is_err());
    assert!(Habf::from_bytes(&fhabf).is_err());
    assert!(Habf::from_bytes(&sharded).is_err());
    assert!(ShardedHabf::<Habf>::from_bytes(&habf).is_err());
    assert!(ShardedHabf::<FHabf>::from_bytes(&sharded).is_err());
}
