//! End-to-end tests of the `habf` command-line tool.

use std::io::Write;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_habf")
}

fn write_file(dir: &std::path::Path, name: &str, lines: &[String]) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create");
    for l in lines {
        writeln!(f, "{l}").expect("write");
    }
    path
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("habf-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&path).expect("mkdir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn build_query_inspect_roundtrip() {
    let dir = TempDir::new("roundtrip");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..3000).map(|i| format!("user:{i}")).collect::<Vec<_>>(),
    );
    let mut neg_lines: Vec<String> = (0..3000).map(|i| format!("bot:{i}")).collect();
    neg_lines.push("bot:hot\t500".into()); // tab-separated cost
    let neg = write_file(&dir.0, "neg.txt", &neg_lines);
    let out = dir.0.join("filter.bin");

    let build = Command::new(bin())
        .args(["build", "--positives"])
        .arg(&pos)
        .arg("--negatives")
        .arg(&neg)
        .args(["--bits-per-key", "10", "--out"])
        .arg(&out)
        .output()
        .expect("run build");
    assert!(
        build.status.success(),
        "{}",
        String::from_utf8_lossy(&build.stderr)
    );
    assert!(out.exists());

    // Members answer "maybe" with exit 0.
    let hit = Command::new(bin())
        .arg("query")
        .arg(&out)
        .args(["user:1", "user:2999"])
        .output()
        .expect("run query");
    assert!(hit.status.success());
    let stdout = String::from_utf8_lossy(&hit.stdout);
    assert_eq!(stdout.matches("maybe\t").count(), 2, "{stdout}");

    // The costly known negative answers "no" with exit 1.
    let miss = Command::new(bin())
        .arg("query")
        .arg(&out)
        .arg("bot:hot")
        .output()
        .expect("run query");
    assert_eq!(miss.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&miss.stdout).starts_with("no\t"));

    let inspect = Command::new(bin())
        .arg("inspect")
        .arg(&out)
        .output()
        .expect("run inspect");
    assert!(inspect.status.success());
    let text = String::from_utf8_lossy(&inspect.stdout);
    assert!(text.contains("HABF"), "{text}");
    assert!(text.contains("bits"), "{text}");
}

#[test]
fn fast_variant_builds_and_loads() {
    let dir = TempDir::new("fast");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..500).map(|i| format!("k{i}")).collect::<Vec<_>>(),
    );
    let neg = write_file(
        &dir.0,
        "neg.txt",
        &(0..500).map(|i| format!("n{i}")).collect::<Vec<_>>(),
    );
    let out = dir.0.join("fast.bin");
    let build = Command::new(bin())
        .args(["build", "--fast", "--positives"])
        .arg(&pos)
        .arg("--negatives")
        .arg(&neg)
        .arg("--out")
        .arg(&out)
        .output()
        .expect("run build");
    assert!(
        build.status.success(),
        "{}",
        String::from_utf8_lossy(&build.stderr)
    );
    let inspect = Command::new(bin())
        .arg("inspect")
        .arg(&out)
        .output()
        .expect("inspect");
    assert!(String::from_utf8_lossy(&inspect.stdout).contains("f-HABF"));
}

#[test]
fn sharded_build_query_inspect_roundtrip() {
    let dir = TempDir::new("sharded");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..2000).map(|i| format!("user:{i}")).collect::<Vec<_>>(),
    );
    let neg = write_file(
        &dir.0,
        "neg.txt",
        &(0..2000).map(|i| format!("bot:{i}")).collect::<Vec<_>>(),
    );
    let out = dir.0.join("sharded.bin");
    let build = Command::new(bin())
        .args(["build", "--shards", "4", "--threads", "2", "--positives"])
        .arg(&pos)
        .arg("--negatives")
        .arg(&neg)
        .args(["--bits-per-key", "10", "--out"])
        .arg(&out)
        .output()
        .expect("run build");
    assert!(
        build.status.success(),
        "{}",
        String::from_utf8_lossy(&build.stderr)
    );
    let build_text = String::from_utf8_lossy(&build.stdout);
    assert!(build_text.contains("sharded-habf"), "{build_text}");
    assert!(build_text.contains("shards: 4"), "{build_text}");

    // Members answer "maybe" with exit 0 through the sharded loader.
    let hit = Command::new(bin())
        .arg("query")
        .arg(&out)
        .args(["user:0", "user:999", "user:1999"])
        .output()
        .expect("run query");
    assert!(
        hit.status.success(),
        "{}",
        String::from_utf8_lossy(&hit.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&hit.stdout)
            .matches("maybe\t")
            .count(),
        3
    );

    let inspect = Command::new(bin())
        .arg("inspect")
        .arg(&out)
        .output()
        .expect("inspect");
    let text = String::from_utf8_lossy(&inspect.stdout);
    assert!(text.contains("Sharded-HABF"), "{text}");
    // Satellite: sharded images expose as much envelope + filter
    // metadata as single-filter ones.
    assert!(text.contains("filter id   : sharded-habf"), "{text}");
    assert!(text.contains("HABC container (v2)"), "{text}");
    assert!(text.contains("shards"), "{text}");
    assert!(text.contains("splitter seed"), "{text}");

    // --shards 0 is rejected up front.
    let zero = Command::new(bin())
        .args(["build", "--shards", "0", "--positives"])
        .arg(&pos)
        .arg("--negatives")
        .arg(&neg)
        .output()
        .expect("run build");
    assert!(!zero.status.success());
    assert!(String::from_utf8_lossy(&zero.stderr).contains("--shards"));
}

/// Builds a filter with NO negative knowledge, replays a hot-miss query
/// log through `habf adapt`, and checks the rebuilt image prunes the
/// replayed misses while keeping every member.
#[test]
fn adapt_replay_mines_fps_and_rebuilds() {
    let dir = TempDir::new("adapt");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..3000).map(|i| format!("user:{i}")).collect::<Vec<_>>(),
    );
    // Build without hints so the query log has something to teach.
    let empty = write_file(&dir.0, "none.txt", &["placeholder:0".into()]);
    let filter = dir.0.join("filter.bin");
    let build = Command::new(bin())
        .args(["build", "--positives"])
        .arg(&pos)
        .arg("--negatives")
        .arg(&empty)
        .args(["--bits-per-key", "8", "--out"])
        .arg(&filter)
        .output()
        .expect("run build");
    assert!(
        build.status.success(),
        "{}",
        String::from_utf8_lossy(&build.stderr)
    );

    // A miss log heavy on a few costly keys (tab-separated costs).
    let mut lines: Vec<String> = (0..2000).map(|i| format!("miss:{i}")).collect();
    for i in 0..50 {
        lines.push(format!("hot-miss:{i}\t100"));
    }
    let queries = write_file(&dir.0, "queries.txt", &lines);
    let adapted = dir.0.join("adapted.bin");
    let adapt = Command::new(bin())
        .arg("adapt")
        .arg(&filter)
        .arg("--positives")
        .arg(&pos)
        .arg("--queries")
        .arg(&queries)
        .arg("--out")
        .arg(&adapted)
        .output()
        .expect("run adapt");
    assert!(
        adapt.status.success(),
        "{}",
        String::from_utf8_lossy(&adapt.stderr)
    );
    let text = String::from_utf8_lossy(&adapt.stdout);
    assert!(text.contains("false positives"), "{text}");
    assert!(text.contains("rebuilt with mined hints"), "{text}");
    assert!(adapted.exists(), "adapted image not written");

    // Zero FN must survive the rebuild; replayed FPs must be (mostly)
    // gone — "0 false positives remain" in practice, but the contract is
    // strictly-fewer.
    // Both counts are printed as "… N false positives …".
    let count_before_word = |line: &str| -> Option<u64> {
        let words: Vec<&str> = line.split_whitespace().collect();
        let i = words.iter().position(|w| *w == "false")?;
        words[i.checked_sub(1)?].parse().ok()
    };
    let before = text
        .lines()
        .find(|l| l.contains("replayed"))
        .and_then(count_before_word)
        .expect("before count");
    let after = text
        .lines()
        .find(|l| l.contains("remain"))
        .and_then(count_before_word)
        .expect("after count");
    assert!(after < before, "{text}");

    let hit = Command::new(bin())
        .arg("query")
        .arg(&adapted)
        .args(["user:0", "user:2999"])
        .output()
        .expect("query adapted");
    assert!(
        hit.status.success(),
        "member dropped by adapted filter: {}",
        String::from_utf8_lossy(&hit.stdout)
    );
}

/// `query --replay FILE` reads keys from a file; with `--adapt` it runs
/// the same loop as `habf adapt`.
#[test]
fn query_replay_and_adapt_flag() {
    let dir = TempDir::new("replay");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..1500).map(|i| format!("user:{i}")).collect::<Vec<_>>(),
    );
    let neg = write_file(
        &dir.0,
        "neg.txt",
        &(0..1500).map(|i| format!("bot:{i}")).collect::<Vec<_>>(),
    );
    let filter = dir.0.join("filter.bin");
    let build = Command::new(bin())
        .args(["build", "--positives"])
        .arg(&pos)
        .arg("--negatives")
        .arg(&neg)
        .args(["--bits-per-key", "8", "--out"])
        .arg(&filter)
        .output()
        .expect("run build");
    assert!(build.status.success());

    let replay = write_file(
        &dir.0,
        "replay.txt",
        &(0..500).map(|i| format!("ghost:{i}")).collect::<Vec<_>>(),
    );
    let run = Command::new(bin())
        .arg("query")
        .arg(&filter)
        .arg("--replay")
        .arg(&replay)
        .output()
        .expect("run query --replay");
    // Replayed misses answer "no" (exit 1) line by line.
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert_eq!(stdout.lines().count(), 500, "{stdout}");
    assert!(stdout.lines().all(|l| l.contains("ghost:")), "{stdout}");

    let adapted = dir.0.join("replay.adapted");
    let adapt = Command::new(bin())
        .arg("query")
        .arg(&filter)
        .arg("--replay")
        .arg(&replay)
        .arg("--adapt")
        .arg("--positives")
        .arg(&pos)
        .arg("--out")
        .arg(&adapted)
        .output()
        .expect("run query --replay --adapt");
    assert!(
        adapt.status.success(),
        "{}",
        String::from_utf8_lossy(&adapt.stderr)
    );
    let text = String::from_utf8_lossy(&adapt.stdout);
    assert!(text.contains("replayed 500 queries"), "{text}");

    // --adapt without --positives fails cleanly.
    let bad = Command::new(bin())
        .arg("query")
        .arg(&filter)
        .arg("--replay")
        .arg(&replay)
        .arg("--adapt")
        .output()
        .expect("run query --adapt without positives");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--positives"));
}

/// Replaying an empty or all-comment file is a valid no-op run: exit 0,
/// "0 keys replayed" on stderr, and no NaN/inf Mops rate from dividing
/// zero keys by a ~zero probe duration.
#[test]
fn query_replay_of_empty_file_reports_zero_keys() {
    let dir = TempDir::new("replay-empty");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..1000).map(|i| format!("user:{i}")).collect::<Vec<_>>(),
    );
    let filter = dir.0.join("filter.bin");
    let build = Command::new(bin())
        .args(["build", "--positives"])
        .arg(&pos)
        .args(["--bits-per-key", "8", "--out"])
        .arg(&filter)
        .output()
        .expect("run build");
    assert!(build.status.success());

    let empty = write_file(&dir.0, "empty.txt", &[]);
    let comments = write_file(
        &dir.0,
        "comments.txt",
        &[
            "# replay log rotated 2026-08-07".to_string(),
            "#user:1".to_string(),
            String::new(),
        ],
    );
    for replay in [&empty, &comments] {
        let run = Command::new(bin())
            .arg("query")
            .arg(&filter)
            .arg("--replay")
            .arg(replay)
            .output()
            .expect("run query --replay on empty file");
        let stderr = String::from_utf8_lossy(&run.stderr);
        assert!(run.status.success(), "{stderr}");
        assert!(run.stdout.is_empty());
        assert!(stderr.contains("0 keys replayed"), "{stderr}");
        assert!(
            !stderr.contains("NaN") && !stderr.contains("inf"),
            "{stderr}"
        );
    }

    // Comment lines never leak into a real replay as probe keys.
    let mixed = write_file(
        &dir.0,
        "mixed.txt",
        &["# header".to_string(), "user:7".to_string()],
    );
    let run = Command::new(bin())
        .arg("query")
        .arg(&filter)
        .arg("--replay")
        .arg(&mixed)
        .output()
        .expect("run query --replay with comments");
    assert!(run.status.success());
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
    assert!(stdout.contains("maybe\tuser:7"), "{stdout}");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(stderr.contains("probed 1 keys"), "{stderr}");
}

/// `habf serve` + `habf client` end to end over a real socket: batched
/// query (exit codes mirror the offline `query`), feedback, stats,
/// rebuild hot-swapping a generation, and a clean `shutdown`.
#[test]
fn serve_and_client_round_trip_over_the_wire() {
    use std::io::BufRead as _;

    let dir = TempDir::new("serve");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..1200).map(|i| format!("user:{i}")).collect::<Vec<_>>(),
    );
    let filter = dir.0.join("users.bin");
    let build = Command::new(bin())
        .args(["build", "--positives"])
        .arg(&pos)
        .args(["--bits-per-key", "10", "--out"])
        .arg(&filter)
        .output()
        .expect("run build");
    assert!(build.status.success());

    let mut server = Command::new(bin())
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--allow-shutdown",
            "--tenant",
        ])
        .arg(format!("users={},{}", filter.display(), pos.display()))
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    // The server prints its resolved address once every tenant is open.
    let mut stdout = std::io::BufReader::new(server.stdout.take().expect("stdout"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stdout.read_line(&mut line).expect("read"),
            0,
            "server exited early"
        );
        if let Some(addr) = line.trim().strip_prefix("serving 1 tenants on ") {
            break addr.to_string();
        }
    };

    let client = |args: &[&str]| {
        Command::new(bin())
            .arg("client")
            .arg(&addr)
            .args(args)
            .output()
            .expect("run client")
    };

    let ping = client(&["ping"]);
    assert!(
        ping.status.success(),
        "{}",
        String::from_utf8_lossy(&ping.stderr)
    );

    let hit = client(&["query", "users", "user:0", "user:1199"]);
    assert!(hit.status.success());
    assert_eq!(
        String::from_utf8_lossy(&hit.stdout)
            .matches("maybe\t")
            .count(),
        2
    );

    let replay = write_file(
        &dir.0,
        "replay.txt",
        &(0..300).map(|i| format!("user:{i}")).collect::<Vec<_>>(),
    );
    let replayed = client(&["query", "users", "--replay", replay.to_str().expect("utf8")]);
    assert!(replayed.status.success());
    assert_eq!(
        String::from_utf8_lossy(&replayed.stdout).lines().count(),
        300
    );

    let miss = client(&["query", "users", "ghost:1"]);
    assert!(
        !miss.status.success(),
        "a miss exits non-zero, like offline query"
    );

    let fed = client(&["feedback", "users", "ghost:1", "4.0"]);
    assert!(fed.status.success());
    assert!(String::from_utf8_lossy(&fed.stdout).contains("accepted 1"));

    let stats = client(&["stats", "users"]);
    let text = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(text.contains("\"filter_id\":\"habf\""), "{text}");
    assert!(text.contains("\"fp_events\":1"), "{text}");

    let rebuilt = client(&["rebuild", "users", "--seed", "3"]);
    assert!(
        rebuilt.status.success(),
        "{}",
        String::from_utf8_lossy(&rebuilt.stderr)
    );
    assert!(String::from_utf8_lossy(&rebuilt.stdout).contains("generation 1"));

    // Unknown tenants are typed errors, not hangs.
    let unknown = client(&["stats", "nope"]);
    assert!(!unknown.status.success());
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("error"));

    let stop = client(&["shutdown"]);
    assert!(stop.status.success());
    let status = server.wait().expect("server exit");
    assert!(status.success(), "server must exit cleanly after shutdown");
}

/// The registry is the CLI's dispatch surface: every id `habf filters`
/// lists must build, persist, query, and inspect with the same flags —
/// the CI matrix runs this same loop through the shell.
#[test]
fn every_registered_filter_id_round_trips_through_the_cli() {
    let dir = TempDir::new("registry-matrix");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..1500).map(|i| format!("user:{i}")).collect::<Vec<_>>(),
    );
    let neg = write_file(
        &dir.0,
        "neg.txt",
        &(0..1500).map(|i| format!("bot:{i}\t3")).collect::<Vec<_>>(),
    );

    let list = Command::new(bin())
        .arg("filters")
        .output()
        .expect("filters");
    assert!(list.status.success());
    let listing = String::from_utf8_lossy(&list.stdout).to_string();
    let ids: Vec<&str> = listing
        .lines()
        .filter_map(|l| l.split('\t').next())
        .collect();
    assert!(ids.len() >= 7, "registry shrank: {ids:?}");

    for id in ids {
        let out = dir.0.join(format!("{id}.bin"));
        let build = Command::new(bin())
            .args(["build", "--filter", id, "--shards", "2", "--positives"])
            .arg(&pos)
            .arg("--negatives")
            .arg(&neg)
            .args(["--bits-per-key", "10", "--out"])
            .arg(&out)
            .output()
            .expect("run build");
        assert!(
            build.status.success(),
            "{id}: {}",
            String::from_utf8_lossy(&build.stderr)
        );

        // Members answer "maybe" with exit 0 for every filter kind.
        let hit = Command::new(bin())
            .arg("query")
            .arg(&out)
            .args(["user:0", "user:749", "user:1499"])
            .output()
            .expect("run query");
        assert!(
            hit.status.success(),
            "{id}: member dropped: {}",
            String::from_utf8_lossy(&hit.stdout)
        );

        // Inspect names the container version and the filter id for
        // every supported format.
        let inspect = Command::new(bin())
            .arg("inspect")
            .arg(&out)
            .output()
            .expect("inspect");
        assert!(inspect.status.success(), "{id}");
        let text = String::from_utf8_lossy(&inspect.stdout);
        assert!(text.contains("HABC container (v2)"), "{id}: {text}");
        assert!(
            text.contains(&format!("filter id   : {id}")),
            "{id}: {text}"
        );
        assert!(text.contains("space"), "{id}: {text}");
    }
}

/// `inspect` on a v2 image reports the mmap backing and the frame table
/// — per-shard payload offsets, each 8-aligned — so operators can verify
/// the alignment contract on a shipped file.
#[test]
fn inspect_reports_backing_and_sharded_frame_table() {
    let dir = TempDir::new("inspect-frames");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..1200).map(|i| format!("user:{i}")).collect::<Vec<_>>(),
    );
    let out = dir.0.join("sharded.bin");
    let build = Command::new(bin())
        .args(["build", "--filter", "sharded-habf", "--shards", "3"])
        .arg("--positives")
        .arg(&pos)
        .args(["--bits-per-key", "10", "--out"])
        .arg(&out)
        .output()
        .expect("build");
    assert!(
        build.status.success(),
        "{}",
        String::from_utf8_lossy(&build.stderr)
    );
    let inspect = Command::new(bin())
        .arg("inspect")
        .arg(&out)
        .output()
        .expect("inspect");
    assert!(inspect.status.success());
    let text = String::from_utf8_lossy(&inspect.stdout);
    assert!(text.contains("backing     : mmap"), "{text}");
    // 3 shards × (bloom + cells) = 6 frames, labelled per shard.
    assert!(text.contains("frames      : 6"), "{text}");
    for shard in 0..3 {
        assert!(text.contains(&format!("shard {shard} bloom")), "{text}");
        assert!(text.contains(&format!("shard {shard} cells")), "{text}");
    }
    assert!(!text.contains("NOT 8-aligned"), "{text}");
}

/// `migrate` rewrites any loadable image as a current v2 container that
/// answers identically and serves mmap-backed.
#[test]
fn migrate_upgrades_legacy_and_v1_images_to_v2() {
    let dir = TempDir::new("migrate");
    // The checked-in legacy fixture and its golden workload (see
    // tests/golden_persist.rs) — plus the v1 container fixture.
    let golden = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for (fixture, id) in [
        ("habf_v1.bin", "habf"),
        ("container_habf_v1.bin", "habf"),
        ("container_sharded-fhabf_v1.bin", "sharded-fhabf"),
    ] {
        let input = dir.0.join(fixture);
        std::fs::copy(golden.join(fixture), &input).expect("copy fixture");
        let out = dir.0.join(format!("{fixture}.migrated"));
        let migrate = Command::new(bin())
            .arg("migrate")
            .arg(&input)
            .arg("--out")
            .arg(&out)
            .output()
            .expect("migrate");
        assert!(
            migrate.status.success(),
            "{fixture}: {}",
            String::from_utf8_lossy(&migrate.stderr)
        );
        let text = String::from_utf8_lossy(&migrate.stdout);
        assert!(text.contains("HABC container (v2)"), "{fixture}: {text}");

        let inspect = Command::new(bin())
            .arg("inspect")
            .arg(&out)
            .output()
            .expect("inspect migrated");
        let text = String::from_utf8_lossy(&inspect.stdout);
        assert!(text.contains("HABC container (v2)"), "{fixture}: {text}");
        assert!(
            text.contains(&format!("filter id   : {id}")),
            "{fixture}: {text}"
        );
        assert!(text.contains("backing     : mmap"), "{fixture}: {text}");

        // The golden members still answer "maybe" through the migrated
        // image.
        let query = Command::new(bin())
            .arg("query")
            .arg(&out)
            .args(["golden:pos:0", "golden:pos:63"])
            .output()
            .expect("query migrated");
        assert!(
            query.status.success(),
            "{fixture}: member lost in migration: {}",
            String::from_utf8_lossy(&query.stdout)
        );
    }
}

/// `adapt` must preserve the input's on-disk format: a legacy image in,
/// a legacy image out — older readers keep loading the adapted output.
#[test]
fn adapt_preserves_the_legacy_image_format() {
    let dir = TempDir::new("adapt-legacy");
    // The checked-in legacy fixture (pre-container format) and its
    // golden workload (see tests/golden_persist.rs).
    let fixture =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/habf_v1.bin");
    let filter = dir.0.join("legacy.bin");
    std::fs::copy(&fixture, &filter).expect("copy fixture");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..64)
            .map(|i| format!("golden:pos:{i}"))
            .collect::<Vec<_>>(),
    );
    let queries = write_file(
        &dir.0,
        "queries.txt",
        &(0..64)
            .map(|i| format!("golden:neg:{i}"))
            .collect::<Vec<_>>(),
    );
    let adapted = dir.0.join("adapted.bin");
    let adapt = Command::new(bin())
        .arg("adapt")
        .arg(&filter)
        .arg("--positives")
        .arg(&pos)
        .arg("--queries")
        .arg(&queries)
        .args(["--threshold", "0.5"])
        .arg("--out")
        .arg(&adapted)
        .output()
        .expect("adapt legacy");
    assert!(
        adapt.status.success(),
        "{}",
        String::from_utf8_lossy(&adapt.stderr)
    );
    if adapted.exists() {
        let bytes = std::fs::read(&adapted).expect("adapted image");
        assert_eq!(&bytes[..4], b"HABF", "legacy input must stay legacy");
        let inspect = Command::new(bin())
            .arg("inspect")
            .arg(&adapted)
            .output()
            .expect("inspect adapted");
        let text = String::from_utf8_lossy(&inspect.stdout);
        assert!(text.contains("legacy HABF image"), "{text}");
    } else {
        // Below threshold (no FPs in the replay): nothing was written,
        // which also cannot have migrated the format.
        let text = String::from_utf8_lossy(&adapt.stdout);
        assert!(text.contains("no adaptation needed"), "{text}");
    }
}

/// `adapt` on a **v1 container** writes a v1 container back (pre-v2
/// readers keep loading it); only v2 inputs re-wrap as v2.
#[test]
fn adapt_preserves_the_v1_container_version() {
    let dir = TempDir::new("adapt-v1");
    let fixture = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/container_habf_v1.bin");
    let filter = dir.0.join("v1.bin");
    std::fs::copy(&fixture, &filter).expect("copy fixture");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..64)
            .map(|i| format!("golden:pos:{i}"))
            .collect::<Vec<_>>(),
    );
    let queries = write_file(
        &dir.0,
        "queries.txt",
        &(0..64)
            .map(|i| format!("golden:neg:{i}"))
            .collect::<Vec<_>>(),
    );
    let adapted = dir.0.join("adapted.bin");
    let adapt = Command::new(bin())
        .arg("adapt")
        .arg(&filter)
        .arg("--positives")
        .arg(&pos)
        .arg("--queries")
        .arg(&queries)
        .args(["--threshold", "0.5"])
        .arg("--out")
        .arg(&adapted)
        .output()
        .expect("adapt v1 container");
    assert!(
        adapt.status.success(),
        "{}",
        String::from_utf8_lossy(&adapt.stderr)
    );
    if adapted.exists() {
        let bytes = std::fs::read(&adapted).expect("adapted image");
        assert_eq!(&bytes[..4], b"HABC", "container input stays a container");
        assert_eq!(bytes[4], 1, "v1 container input must stay v1");
        let inspect = Command::new(bin())
            .arg("inspect")
            .arg(&adapted)
            .output()
            .expect("inspect adapted");
        let text = String::from_utf8_lossy(&inspect.stdout);
        assert!(text.contains("HABC container (v1)"), "{text}");
    } else {
        let text = String::from_utf8_lossy(&adapt.stdout);
        assert!(text.contains("no adaptation needed"), "{text}");
    }
}

/// `--fast` next to an explicit `--filter` is a contradiction, not a
/// silently dropped flag.
#[test]
fn fast_flag_conflicts_with_explicit_filter_id() {
    let dir = TempDir::new("fast-conflict");
    let pos = write_file(&dir.0, "pos.txt", &["k1".into(), "k2".into()]);
    let out = Command::new(bin())
        .args(["build", "--filter", "habf", "--fast", "--positives"])
        .arg(&pos)
        .output()
        .expect("run build");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--fast conflicts with --filter"));
}

/// Filters without the rebuild capability refuse `adapt` with a typed
/// message instead of corrupting the image or panicking.
#[test]
fn adapt_refuses_filters_without_the_rebuild_capability() {
    let dir = TempDir::new("adapt-refusal");
    let pos = write_file(
        &dir.0,
        "pos.txt",
        &(0..500).map(|i| format!("user:{i}")).collect::<Vec<_>>(),
    );
    let queries = write_file(
        &dir.0,
        "queries.txt",
        &(0..200).map(|i| format!("miss:{i}")).collect::<Vec<_>>(),
    );
    let out = dir.0.join("bloom.bin");
    let build = Command::new(bin())
        .args(["build", "--filter", "bloom", "--positives"])
        .arg(&pos)
        .arg("--out")
        .arg(&out)
        .output()
        .expect("build bloom");
    assert!(
        build.status.success(),
        "{}",
        String::from_utf8_lossy(&build.stderr)
    );
    let adapt = Command::new(bin())
        .arg("adapt")
        .arg(&out)
        .arg("--positives")
        .arg(&pos)
        .arg("--queries")
        .arg(&queries)
        .output()
        .expect("adapt bloom");
    assert!(!adapt.status.success());
    let err = String::from_utf8_lossy(&adapt.stderr);
    assert!(err.contains("does not support adaptation"), "{err}");
}

#[test]
fn corrupt_filter_file_fails_cleanly() {
    let dir = TempDir::new("corrupt");
    let bad = write_file(&dir.0, "bad.bin", &["this is not a filter".into()]);
    let out = Command::new(bin())
        .arg("inspect")
        .arg(&bad)
        .output()
        .expect("inspect");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("habf:"));
}

#[test]
fn missing_args_show_usage() {
    let out = Command::new(bin()).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
