//! Cross-crate integration tests: every filter, both dataset generators,
//! the one-sided-error contract, and the paper's headline orderings.

use habf::core::{FHabf, Habf, HabfConfig};
use habf::filters::{
    AdaptiveLearnedBloomFilter, BloomFilter, Filter, LearnedBloomFilter, LogisticRegression,
    SandwichedLearnedBloomFilter, WeightedBloomFilter, XorFilter,
};
use habf::util::Xoshiro256;
use habf::workloads::{metrics, zipf_costs, Dataset, ShallaConfig, YcsbConfig};

fn shalla() -> Dataset {
    ShallaConfig::with_scale(0.004).generate()
}

fn ycsb() -> Dataset {
    YcsbConfig::with_scale(0.0006).generate()
}

fn model() -> Box<LogisticRegression> {
    Box::new(LogisticRegression::new(10, 2, 0.15, 5))
}

/// Every filter accepts every positive key on both datasets.
#[test]
fn one_sided_error_contract_holds_everywhere() {
    for ds in [shalla(), ycsb()] {
        let total_bits = ds.positives.len() * 12;
        let unit: Vec<(&[u8], f64)> = ds.negatives.iter().map(|k| (k.as_slice(), 1.0)).collect();
        let cfg = HabfConfig::with_total_bits(total_bits);

        let filters: Vec<Box<dyn Filter>> = vec![
            Box::new(Habf::build(&ds.positives, &unit, &cfg)),
            Box::new(FHabf::build(&ds.positives, &unit, &cfg)),
            Box::new(BloomFilter::build(&ds.positives, total_bits)),
            Box::new(XorFilter::build(&ds.positives, total_bits)),
            Box::new(WeightedBloomFilter::build(
                &ds.positives,
                &unit,
                total_bits,
                256,
            )),
            Box::new(LearnedBloomFilter::build(
                &ds.positives,
                &ds.negatives,
                total_bits,
                model(),
            )),
            Box::new(SandwichedLearnedBloomFilter::build(
                &ds.positives,
                &ds.negatives,
                total_bits,
                model(),
            )),
            Box::new(AdaptiveLearnedBloomFilter::build(
                &ds.positives,
                &ds.negatives,
                total_bits,
                4,
                model(),
            )),
        ];
        for f in &filters {
            assert_eq!(
                metrics::false_negatives(|k| f.contains(k), &ds.positives),
                0,
                "{} dropped members on {}",
                f.name(),
                ds.name
            );
        }
    }
}

/// The headline result: with known negatives, HABF beats the standard BF
/// at equal space on both datasets.
#[test]
fn habf_beats_bloom_on_known_negatives() {
    for ds in [shalla(), ycsb()] {
        let total_bits = ds.positives.len() * 8;
        let unit: Vec<(&[u8], f64)> = ds.negatives.iter().map(|k| (k.as_slice(), 1.0)).collect();
        let habf = Habf::build(
            &ds.positives,
            &unit,
            &HabfConfig::with_total_bits(total_bits),
        );
        let bloom = BloomFilter::build(&ds.positives, total_bits);
        let habf_fpr = metrics::fpr(|k| habf.contains(k), &ds.negatives);
        let bloom_fpr = metrics::fpr(|k| bloom.contains(k), &ds.negatives);
        assert!(
            habf_fpr < bloom_fpr,
            "{}: HABF {habf_fpr} not below BF {bloom_fpr}",
            ds.name
        );
    }
}

/// Under skewed costs the gap widens: HABF's weighted FPR improves with
/// skew while BF's does not (Fig 13's mechanism).
#[test]
fn skew_widens_the_weighted_gap() {
    let ds = shalla();
    let total_bits = ds.positives.len() * 8;
    let mut rng = Xoshiro256::new(42);
    let costs = zipf_costs(ds.negatives.len(), 1.5, &mut rng);
    let with_costs: Vec<(&[u8], f64)> = ds.negatives_with_costs(&costs);

    let habf = Habf::build(
        &ds.positives,
        &with_costs,
        &HabfConfig::with_total_bits(total_bits),
    );
    let bloom = BloomFilter::build(&ds.positives, total_bits);
    let habf_w = metrics::weighted_fpr(|k| habf.contains(k), &ds.negatives, &costs);
    let bloom_w = metrics::weighted_fpr(|k| bloom.contains(k), &ds.negatives, &costs);
    assert!(
        habf_w < bloom_w / 2.0,
        "skewed: HABF {habf_w} vs BF {bloom_w} — expected a wide gap"
    );
}

/// f-HABF trades accuracy for speed but stays in HABF's neighbourhood
/// (paper: ~1.5× on average), far below the unoptimized baseline.
#[test]
fn fhabf_between_habf_and_bloom() {
    let ds = shalla();
    let total_bits = ds.positives.len() * 8;
    let unit: Vec<(&[u8], f64)> = ds.negatives.iter().map(|k| (k.as_slice(), 1.0)).collect();
    let cfg = HabfConfig::with_total_bits(total_bits);
    let habf = Habf::build(&ds.positives, &unit, &cfg);
    let fhabf = FHabf::build(&ds.positives, &unit, &cfg);
    let bloom = BloomFilter::build(&ds.positives, total_bits);
    let h = metrics::fpr(|k| habf.contains(k), &ds.negatives);
    let f = metrics::fpr(|k| fhabf.contains(k), &ds.negatives);
    let b = metrics::fpr(|k| bloom.contains(k), &ds.negatives);
    assert!(f < b, "f-HABF {f} not below BF {b}");
    assert!(f < h * 5.0 + 0.01, "f-HABF {f} too far above HABF {h}");
}

/// Learned filters beat BF on the characteristically structured corpus and
/// lose their edge on the characteristic-free one (Fig 10's contrast).
#[test]
fn learned_filters_depend_on_key_structure() {
    let structured = shalla();
    let random = ycsb();
    for (ds, expect_signal) in [(&structured, true), (&random, false)] {
        let total_bits = ds.positives.len() * 12;
        let lbf = LearnedBloomFilter::build(&ds.positives, &ds.negatives, total_bits, model());
        let bloom = BloomFilter::build(&ds.positives, total_bits);
        let lbf_fpr = metrics::fpr(|k| lbf.contains(k), &ds.negatives);
        let bloom_fpr = metrics::fpr(|k| bloom.contains(k), &ds.negatives);
        if expect_signal {
            // On Shalla-like data the learned filter must be competitive
            // (within 3× of BF; typically better).
            assert!(
                lbf_fpr < bloom_fpr * 3.0 + 0.01,
                "LBF {lbf_fpr} vs BF {bloom_fpr} on structured keys"
            );
        } else {
            // On YCSB-like keys the model cannot generalize; the filter
            // still works (zero FNR checked elsewhere) but offers no
            // dramatic advantage over BF.
            assert!(
                lbf_fpr > bloom_fpr / 3.0,
                "LBF {lbf_fpr} suspiciously below BF {bloom_fpr} on random keys"
            );
        }
    }
}

/// Space accounting: every filter's reported structure size stays within
/// its budget envelope (+25% tolerance for the Xor filter's 1.23× slots).
#[test]
fn space_budgets_are_respected() {
    let ds = shalla();
    let total_bits = ds.positives.len() * 10;
    let unit: Vec<(&[u8], f64)> = ds.negatives.iter().map(|k| (k.as_slice(), 1.0)).collect();
    let cfg = HabfConfig::with_total_bits(total_bits);
    let habf = Habf::build(&ds.positives, &unit, &cfg);
    let bloom = BloomFilter::build(&ds.positives, total_bits);
    let xor = XorFilter::build(&ds.positives, total_bits);
    assert!(habf.space_bits() <= total_bits);
    assert_eq!(bloom.space_bits(), total_bits);
    assert!(xor.space_bits() <= total_bits * 5 / 4);
}
