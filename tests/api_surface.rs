//! API-surface snapshot: pins the façade prelude and the filter-registry
//! ids so an accidental rename, dropped re-export, or registry edit fails
//! loudly — these are the symbols and strings shipped filter images and
//! downstream code depend on.

// Every prelude symbol, imported by name: a removal or rename breaks this
// file at compile time.
#[allow(unused_imports)]
use habf::core::{Growable, RebuildKind, ScalableHabf};
#[allow(unused_imports)]
use habf::prelude::{
    AdaptPolicy, BatchQuery, BuildError, BuildInput, DynFilter, FHabf, Filter, FilterSpec, FpLog,
    Habf, HabfConfig, HintError, ImageFormat, LoadedFilter, PersistError, Rebuildable,
    ShardedConfig, ShardedHabf,
};

/// The registered filter ids, in registration order. Ids are persisted
/// inside every `HABC` container, so removing or renaming one orphans
/// shipped images — additions belong at the end.
#[test]
fn registry_ids_are_pinned() {
    assert_eq!(
        habf::core::registry::ids(),
        vec![
            "habf",
            "fhabf",
            "sharded-habf",
            "sharded-fhabf",
            "bloom",
            "weighted-bloom",
            "xor",
            "blocked-bloom",
            "blocked-habf",
            "binary-fuse",
            "scalable-habf",
        ],
        "registry ids are a persistence contract; append, never rename"
    );
}

/// Every registry id resolves to a spec, and the typed constructors agree
/// with the string-keyed path.
#[test]
fn typed_spec_constructors_match_their_ids() {
    for (spec, id) in [
        (FilterSpec::habf(), "habf"),
        (FilterSpec::fhabf(), "fhabf"),
        (FilterSpec::sharded(2), "sharded-habf"),
        (FilterSpec::sharded_fast(2), "sharded-fhabf"),
        (FilterSpec::bloom(), "bloom"),
        (FilterSpec::weighted_bloom(), "weighted-bloom"),
        (FilterSpec::xor(), "xor"),
        (FilterSpec::blocked_bloom(), "blocked-bloom"),
        (FilterSpec::blocked_habf(), "blocked-habf"),
        (FilterSpec::binary_fuse(), "binary-fuse"),
        (FilterSpec::scalable_habf(), "scalable-habf"),
    ] {
        assert_eq!(spec.id(), id);
        assert!(
            FilterSpec::by_id(id).is_some(),
            "{id}: by_id must resolve every registered id"
        );
    }
    assert!(FilterSpec::by_id("no-such-filter").is_none());
}

/// The built filters report the id they were specced with — the id is
/// what the container persists and the registry loads by.
#[test]
fn built_filters_carry_their_registry_id() {
    let members: Vec<Vec<u8>> = (0..300).map(|i| format!("m:{i}").into_bytes()).collect();
    let input = BuildInput::from_members(&members);
    for id in habf::core::registry::ids() {
        let filter = FilterSpec::by_id(id)
            .expect("registered")
            .bits_per_key(10.0)
            .shards(2)
            .build(&input)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(filter.filter_id(), id);
    }
}

/// `DynFilter` must stay object-safe, the capability traits usable
/// through it, and the trait upcast to `Filter` available — this is the
/// exact shape the LSM store and the CLI rely on.
#[test]
fn dyn_filter_is_object_safe_with_upcast_and_capabilities() {
    let members: Vec<Vec<u8>> = (0..300).map(|i| format!("m:{i}").into_bytes()).collect();
    let input = BuildInput::from_members(&members);
    let mut filter: Box<dyn DynFilter> = FilterSpec::sharded(2)
        .bits_per_key(10.0)
        .build(&input)
        .expect("sharded builds");
    let as_filter: &dyn Filter = filter.as_ref();
    assert!(as_filter.space_bits() > 0);
    let keys: Vec<&[u8]> = members.iter().map(Vec::as_slice).collect();
    let batch: &dyn BatchQuery = filter.as_batch().expect("sharded batches");
    assert!(batch.contains_batch(&keys).iter().all(|&b| b));
    let rebuildable: &mut dyn Rebuildable = filter.as_rebuildable().expect("sharded rebuilds");
    rebuildable
        .rebuild(&BuildInput::from_members(&members), 1)
        .expect("rebuild over members only");
    assert!(members.iter().all(|k| filter.contains(k)));
}

/// The grow capability is discoverable only on the elastic stack; every
/// fixed-capacity filter answers `None` from `as_growable` and the
/// read-only defaults (one generation, saturation 1) from `DynFilter`.
#[test]
fn grow_capability_is_exclusive_to_the_scalable_stack() {
    let members: Vec<Vec<u8>> = (0..300).map(|i| format!("m:{i}").into_bytes()).collect();
    let input = BuildInput::from_members(&members);
    for id in habf::core::registry::ids() {
        let mut filter = FilterSpec::by_id(id)
            .expect("registered")
            .bits_per_key(10.0)
            .shards(2)
            .build(&input)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(
            filter.as_growable().is_some(),
            id == "scalable-habf",
            "{id}: grow capability mismatch"
        );
        assert!(filter.saturation().is_finite(), "{id}");
        assert!(filter.generations() >= 1, "{id}");
        assert!(
            filter
                .metadata()
                .iter()
                .any(|(label, _)| *label == "saturation"),
            "{id}: metadata must report saturation"
        );
    }

    // And the capability actually grows: 8× the design capacity, zero FN.
    let mut filter = FilterSpec::scalable_habf()
        .bits_per_key(10.0)
        .build(&input)
        .expect("build");
    let late: Vec<Vec<u8>> = (0..8 * members.len())
        .map(|i| format!("late:{i}").into_bytes())
        .collect();
    {
        let growable: &mut dyn Growable = filter.as_growable().expect("scalable grows");
        for key in &late {
            growable.insert(key);
        }
    }
    assert!(filter.generations() > 1);
    assert!(members.iter().chain(&late).all(|k| filter.contains(k)));
}
