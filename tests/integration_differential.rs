//! Differential test across filter implementations on one Zipf-costed
//! workload: `Bloom`, `WeightedBloom`, `Habf`, and the sharded serving
//! layer must all uphold zero false negatives, answer consistently with
//! themselves across query paths, and HABF's weighted FPR cost must not
//! exceed the plain Bloom baseline at equal space — the paper's central
//! claim (§V, Fig 11).

use habf::core::{Habf, HabfConfig, ShardedConfig, ShardedHabf};
use habf::filters::{BloomFilter, Filter, WeightedBloomFilter};
use habf::util::Xoshiro256;
use habf::workloads::{metrics, zipf_costs, ShallaConfig};

#[test]
fn filters_agree_on_zero_fnr_and_habf_cost_beats_bloom() {
    // One Zipf(1.0) workload from habf-workloads: Shalla-like keys with
    // rank-shuffled costs, as in the paper's skewed-cost experiments.
    let ds = ShallaConfig::with_scale(0.005).generate();
    let mut rng = Xoshiro256::new(0x21FF);
    let costs = zipf_costs(ds.negatives.len(), 1.0, &mut rng);
    let negatives = ds.negatives_with_costs(&costs);
    let total_bits = ds.positives.len() * 10; // equal budget for every filter

    let bloom = BloomFilter::build(&ds.positives, total_bits);
    let cache = (ds.negatives.len() / 100).clamp(64, 4096);
    let wbf = WeightedBloomFilter::build(&ds.positives, &negatives, total_bits, cache);
    let habf = Habf::build(
        &ds.positives,
        &negatives,
        &HabfConfig::with_total_bits(total_bits),
    );
    let sharded = ShardedHabf::<Habf>::build_par(
        &ds.positives,
        &negatives,
        &ShardedConfig::new(4, HabfConfig::with_total_bits(total_bits)),
    );

    // Zero false negatives, every implementation.
    let filters: [&dyn Filter; 4] = [&bloom, &wbf, &habf, &sharded];
    for f in filters {
        let fns = metrics::false_negatives(|k| f.contains(k), &ds.positives);
        assert_eq!(fns, 0, "{} produced {fns} false negatives", f.name());
    }

    // Weighted FPR (Eq 20): HABF's misidentification cost at equal bits
    // must not exceed the cost-blind Bloom baseline.
    let w_bloom = metrics::weighted_fpr(|k| bloom.contains(k), &ds.negatives, &costs);
    let w_habf = metrics::weighted_fpr(|k| habf.contains(k), &ds.negatives, &costs);
    assert!(
        w_habf <= w_bloom,
        "HABF weighted FPR {w_habf:.6} exceeds Bloom baseline {w_bloom:.6} at equal bits"
    );

    // The sharded layer is a repartitioning, not a different algorithm:
    // its weighted cost must stay in family with Bloom too.
    let w_sharded = metrics::weighted_fpr(|k| sharded.contains(k), &ds.negatives, &costs);
    assert!(
        w_sharded <= w_bloom,
        "Sharded HABF weighted FPR {w_sharded:.6} exceeds Bloom baseline {w_bloom:.6}"
    );

    // Differential consistency: scalar, batched, and parallel-batched
    // sharded query paths agree on every key of the workload.
    let mut probe: Vec<Vec<u8>> = ds.positives.clone();
    probe.extend(ds.negatives.iter().cloned());
    let batch = sharded.contains_batch(&probe);
    let batch_par = sharded.contains_batch_par(&probe, 4);
    for (i, key) in probe.iter().enumerate() {
        let scalar = sharded.contains(key);
        assert_eq!(scalar, batch[i], "batch diverges at key {i}");
        assert_eq!(scalar, batch_par[i], "parallel batch diverges at key {i}");
    }
}
