//! Differential test across filter implementations on one Zipf-costed
//! workload: `Bloom`, `WeightedBloom`, `Habf`, and the sharded serving
//! layer must all uphold zero false negatives, answer consistently with
//! themselves across query paths, and HABF's weighted FPR cost must not
//! exceed the plain Bloom baseline at equal space — the paper's central
//! claim (§V, Fig 11).

use habf::core::{Habf, HabfConfig, ShardedConfig, ShardedHabf};
use habf::filters::{BloomFilter, Filter, WeightedBloomFilter};
use habf::util::Xoshiro256;
use habf::workloads::{metrics, zipf_costs, ShallaConfig};

#[test]
fn filters_agree_on_zero_fnr_and_habf_cost_beats_bloom() {
    // One Zipf(1.0) workload from habf-workloads: Shalla-like keys with
    // rank-shuffled costs, as in the paper's skewed-cost experiments.
    let ds = ShallaConfig::with_scale(0.005).generate();
    let mut rng = Xoshiro256::new(0x21FF);
    let costs = zipf_costs(ds.negatives.len(), 1.0, &mut rng);
    let negatives = ds.negatives_with_costs(&costs);
    let total_bits = ds.positives.len() * 10; // equal budget for every filter

    let bloom = BloomFilter::build(&ds.positives, total_bits);
    let cache = (ds.negatives.len() / 100).clamp(64, 4096);
    let wbf = WeightedBloomFilter::build(&ds.positives, &negatives, total_bits, cache);
    let habf = Habf::build(
        &ds.positives,
        &negatives,
        &HabfConfig::with_total_bits(total_bits),
    );
    let sharded = ShardedHabf::<Habf>::build_par(
        &ds.positives,
        &negatives,
        &ShardedConfig::new(4, HabfConfig::with_total_bits(total_bits)),
    );

    // Zero false negatives, every implementation.
    let filters: [&dyn Filter; 4] = [&bloom, &wbf, &habf, &sharded];
    for f in filters {
        let fns = metrics::false_negatives(|k| f.contains(k), &ds.positives);
        assert_eq!(fns, 0, "{} produced {fns} false negatives", f.name());
    }

    // Weighted FPR (Eq 20): HABF's misidentification cost at equal bits
    // must not exceed the cost-blind Bloom baseline.
    let w_bloom = metrics::weighted_fpr(|k| bloom.contains(k), &ds.negatives, &costs);
    let w_habf = metrics::weighted_fpr(|k| habf.contains(k), &ds.negatives, &costs);
    assert!(
        w_habf <= w_bloom,
        "HABF weighted FPR {w_habf:.6} exceeds Bloom baseline {w_bloom:.6} at equal bits"
    );

    // The sharded layer is a repartitioning, not a different algorithm:
    // its weighted cost must stay in family with Bloom too.
    let w_sharded = metrics::weighted_fpr(|k| sharded.contains(k), &ds.negatives, &costs);
    assert!(
        w_sharded <= w_bloom,
        "Sharded HABF weighted FPR {w_sharded:.6} exceeds Bloom baseline {w_bloom:.6}"
    );

    // Differential consistency: scalar, batched, and parallel-batched
    // sharded query paths agree on every key of the workload.
    let mut probe: Vec<Vec<u8>> = ds.positives.clone();
    probe.extend(ds.negatives.iter().cloned());
    let batch = sharded.contains_batch(&probe);
    let batch_par = sharded.contains_batch_par(&probe, 4);
    for (i, key) in probe.iter().enumerate() {
        let scalar = sharded.contains(key);
        assert_eq!(scalar, batch[i], "batch diverges at key {i}");
        assert_eq!(scalar, batch_par[i], "parallel batch diverges at key {i}");
    }
}

/// The probe-pipeline variants (blocked Bloom, blocked HABF, binary
/// fuse) on the same Zipf-costed workload: zero false negatives, batch
/// paths agreeing with the scalar loop, sane uniform FPR, and — the
/// blocking trade-off pinned — blocked HABF's weighted FPR staying
/// within 10% of standard HABF at equal space.
#[test]
fn blocked_and_fuse_variants_uphold_contracts_on_zipf_workload() {
    use habf::prelude::{BuildInput, FilterSpec};

    let ds = ShallaConfig::with_scale(0.005).generate();
    let mut rng = Xoshiro256::new(0x21FF);
    let costs = zipf_costs(ds.negatives.len(), 1.0, &mut rng);
    let negatives = ds.negatives_with_costs(&costs);
    let total_bits = ds.positives.len() * 10;
    let input = BuildInput::from_members(&ds.positives).with_costed_negatives(&negatives);

    let mut probe: Vec<Vec<u8>> = ds.positives.clone();
    probe.extend(ds.negatives.iter().cloned());
    let slices: Vec<&[u8]> = probe.iter().map(Vec::as_slice).collect();

    for id in ["blocked-bloom", "blocked-habf", "binary-fuse"] {
        let filter = FilterSpec::by_id(id)
            .expect("variant registered")
            .total_bits(total_bits)
            .build(&input)
            .unwrap_or_else(|e| panic!("{id} build failed: {e}"));

        let fns = metrics::false_negatives(|k| filter.contains(k), &ds.positives);
        assert_eq!(fns, 0, "{id} produced {fns} false negatives");

        // Uniform FPR sanity at 10 bits/key: all three sit well under
        // 10% (standard Bloom is ~0.8%; blocking costs < 2.5x, the fuse
        // filter ~2^-8).
        let fpr = metrics::fpr(|k| filter.contains(k), &ds.negatives);
        assert!(fpr < 0.10, "{id}: uniform FPR {fpr:.4} out of family");

        // Differential consistency across every query path.
        let batch = filter.as_batch().expect("variant is batchable");
        let scalar: Vec<bool> = slices.iter().map(|k| filter.contains(k)).collect();
        assert_eq!(
            scalar,
            batch.contains_batch(&slices),
            "{id}: batch diverged"
        );
        assert_eq!(
            scalar,
            batch.contains_batch_par(&slices, 4),
            "{id}: parallel batch diverged"
        );
    }

    // Blocking confines each key's probes to one cache line at a small
    // FPR penalty; the acceptance bound is ≤ 10% weighted-FPR regression
    // vs the unblocked HABF at equal bits on the Zipf workload.
    let habf = Habf::build(
        &ds.positives,
        &negatives,
        &HabfConfig::with_total_bits(total_bits),
    );
    let blocked = FilterSpec::blocked_habf()
        .total_bits(total_bits)
        .build(&input)
        .expect("blocked HABF builds");
    let w_habf = metrics::weighted_fpr(|k| habf.contains(k), &ds.negatives, &costs);
    let w_blocked = metrics::weighted_fpr(|k| blocked.contains(k), &ds.negatives, &costs);
    assert!(
        w_blocked <= w_habf * 1.10 + 1e-9,
        "blocked HABF weighted FPR {w_blocked:.6} regresses more than 10% over \
         standard HABF {w_habf:.6} at equal bits"
    );
}
