//! Persistence integration: build offline on a real workload, ship the
//! bytes, answer identically.

use habf::core::{FHabf, Habf, HabfConfig};
use habf::filters::Filter;
use habf::util::Xoshiro256;
use habf::workloads::{zipf_costs, ShallaConfig};

#[test]
fn shipped_filter_answers_identically() {
    let ds = ShallaConfig::with_scale(0.003).generate();
    let mut rng = Xoshiro256::new(5);
    let costs = zipf_costs(ds.negatives.len(), 1.0, &mut rng);
    let negatives: Vec<(&[u8], f64)> = ds.negatives_with_costs(&costs);
    let cfg = HabfConfig::with_total_bits(ds.positives.len() * 10);

    let built = Habf::build(&ds.positives, &negatives, &cfg);
    let image = built.to_bytes();
    // Image size ≈ the filter's space budget plus a small header.
    assert!(image.len() * 8 <= built.space_bits() + 1024);
    let shipped = Habf::from_bytes(&image).expect("load");
    for key in ds.positives.iter().chain(ds.negatives.iter()) {
        assert_eq!(built.contains(key), shipped.contains(key));
    }

    let fast = FHabf::build(&ds.positives, &negatives, &cfg);
    let shipped_fast = FHabf::from_bytes(&fast.to_bytes()).expect("load");
    for key in ds.positives.iter().chain(ds.negatives.iter().take(5_000)) {
        assert_eq!(fast.contains(key), shipped_fast.contains(key));
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = Xoshiro256::new(99);
    for len in [0usize, 1, 4, 5, 16, 64, 256, 4096] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        assert!(Habf::from_bytes(&garbage).is_err());
        assert!(FHabf::from_bytes(&garbage).is_err());
    }
    // Valid header prefix + random tail.
    let ds = ShallaConfig::with_scale(0.0005).generate();
    let neg: Vec<(&[u8], f64)> = ds.negatives.iter().map(|k| (k.as_slice(), 1.0)).collect();
    let image = Habf::build(
        &ds.positives,
        &neg,
        &HabfConfig::with_total_bits(ds.positives.len() * 10),
    )
    .to_bytes();
    for flip in [6usize, 7, 10, 20, 40] {
        let mut corrupted = image.clone();
        corrupted[flip] = corrupted[flip].wrapping_add(97);
        // Must either load (benign field) or error — never panic. If it
        // loads, the one-sided error contract may be broken, which is why
        // production deployments should checksum images externally.
        let _ = Habf::from_bytes(&corrupted);
    }
}
