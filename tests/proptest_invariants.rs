//! Property-based invariants across the whole stack.
//!
//! These drive the core guarantees with arbitrary inputs: zero false
//! negatives for every filter, HashExpressor chain recovery, and the
//! equivalence of weighted and plain FPR under uniform costs.

use habf::core::{FHabf, Habf, HabfConfig, HashExpressor};
use habf::filters::{BloomFilter, Filter, XorFilter};
use habf::hashing::{HashFamily, HashId};
use habf::util::Xoshiro256;
use habf::workloads::metrics;
use proptest::prelude::*;

/// Arbitrary disjoint positive/negative key sets.
fn key_sets() -> impl Strategy<Value = (Vec<Vec<u8>>, Vec<Vec<u8>>)> {
    (
        prop::collection::hash_set("[a-z0-9]{1,20}", 1..120),
        prop::collection::hash_set("[A-Z0-9]{1,20}", 0..120),
    )
        .prop_map(|(pos, neg)| {
            // Lowercase vs uppercase alphabets keep the sets disjoint.
            (
                pos.into_iter().map(String::into_bytes).collect(),
                neg.into_iter().map(String::into_bytes).collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// HABF never drops a member, whatever the sets and costs look like.
    #[test]
    fn habf_zero_fnr((pos, neg) in key_sets(), skew in 0u8..4, seed in any::<u64>()) {
        let negatives: Vec<(Vec<u8>, f64)> = neg
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), 1.0 + (i as f64) * f64::from(skew)))
            .collect();
        let mut cfg = HabfConfig::with_total_bits((pos.len() * 12).max(64));
        cfg.seed = seed;
        let filter = Habf::build(&pos, &negatives, &cfg);
        for k in &pos {
            prop_assert!(filter.contains(k), "dropped {:?}", k);
        }
    }

    /// Same for the fast variant.
    #[test]
    fn fhabf_zero_fnr((pos, neg) in key_sets(), seed in any::<u64>()) {
        let negatives: Vec<(Vec<u8>, f64)> = neg
            .iter()
            .map(|k| (k.clone(), 1.0))
            .collect();
        let mut cfg = HabfConfig::with_total_bits((pos.len() * 12).max(64));
        cfg.seed = seed;
        let filter = FHabf::build(&pos, &negatives, &cfg);
        for k in &pos {
            prop_assert!(filter.contains(k), "dropped {:?}", k);
        }
    }

    /// BF and Xor uphold the same contract on arbitrary keys.
    #[test]
    fn baselines_zero_fnr((pos, _neg) in key_sets()) {
        let m = (pos.len() * 10).max(64);
        let bloom = BloomFilter::build(&pos, m);
        let xor = XorFilter::build_with_fp_bits(&pos, 8);
        for k in &pos {
            prop_assert!(bloom.contains(k));
            prop_assert!(xor.contains(k));
        }
    }

    /// Any chain the HashExpressor accepts is recovered as the same set.
    #[test]
    fn hash_expressor_roundtrip(
        keys in prop::collection::hash_set("[a-z]{1,16}", 1..60),
        seed in any::<u64>(),
    ) {
        let family = HashFamily::with_size(7);
        let mut he = HashExpressor::new(4096, 4, 3);
        let mut rng = Xoshiro256::new(seed);
        let mut stored: Vec<(Vec<u8>, Vec<HashId>)> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let phi: Vec<HashId> = {
                let base = (i % 5) as u8;
                vec![1 + base % 7, 1 + (base + 2) % 7, 1 + (base + 4) % 7]
            };
            if let Some(plan) = he.plan(key.as_bytes(), &phi, &family, &mut rng) {
                he.commit(&plan);
                stored.push((key.clone().into_bytes(), phi));
            }
        }
        for (key, phi) in &stored {
            let got = he.query(key, &family);
            prop_assert!(got.is_some(), "stored chain lost for {:?}", key);
            let mut got = got.unwrap();
            let mut want = phi.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Uniform costs collapse the weighted FPR to the plain FPR for any
    /// membership predicate.
    #[test]
    fn uniform_weighted_fpr_equals_plain((_, neg) in key_sets(), mask in any::<u64>()) {
        prop_assume!(!neg.is_empty());
        let costs = vec![1.0; neg.len()];
        let pred = |k: &[u8]| (k.len() as u64) & (mask % 3) == 0;
        let w = metrics::weighted_fpr(pred, &neg, &costs);
        let p = metrics::fpr(pred, &neg);
        prop_assert!((w - p).abs() < 1e-12);
    }

    /// HABF's false positives on the *training* negatives never exceed the
    /// collision keys TPJO reports as failed plus the HashExpressor's
    /// accidental-chain allowance.
    #[test]
    fn habf_fp_bounded_by_stats((pos, neg) in key_sets(), seed in any::<u64>()) {
        prop_assume!(pos.len() >= 8 && neg.len() >= 8);
        let negatives: Vec<(Vec<u8>, f64)> = neg.iter().map(|k| (k.clone(), 1.0)).collect();
        let mut cfg = HabfConfig::with_total_bits(pos.len() * 12);
        cfg.seed = seed;
        let filter = Habf::build(&pos, &negatives, &cfg);
        let fp = neg.iter().filter(|k| filter.contains(k)).count();
        let stats = filter.stats();
        // Every false positive is either an unoptimized collision key or an
        // accidental HashExpressor chain; failures track the former.
        let allowance = stats.failed + stats.requeued + neg.len() / 4 + 2;
        prop_assert!(
            fp <= allowance,
            "fp {} exceeds failures {} + slack",
            fp,
            stats.failed
        );
    }
}
