//! Property test for the batch probe pipeline: on arbitrary workloads,
//! every batchable filter id must answer a large mixed probe set
//! identically through the scalar loop, the batch pipeline with
//! software prefetch disabled, the pipeline with prefetch on, and the
//! parallel fan-out. Prefetch is a cache hint and the pipeline is a
//! reordering of the same probes, so any divergence is a bug in the
//! plan/test split — exactly the class of bug this test exists to catch.

use habf::prelude::{BatchQuery, BuildInput, FilterSpec};
use proptest::prelude::*;

/// Probes per filter id: half members (cycled), half fresh keys, interleaved
/// so positive and negative probes alternate through the pipeline chunks.
fn mixed_probes(members: &[Vec<u8>], total: usize) -> Vec<Vec<u8>> {
    (0..total)
        .map(|i| {
            if i % 2 == 0 {
                members[(i / 2) % members.len()].clone()
            } else {
                // ':' is outside the member alphabet, so fresh keys are
                // guaranteed non-members.
                format!("fresh:{i}").into_bytes()
            }
        })
        .collect()
}

proptest! {
    // Each case probes ~10k keys through four paths on every batchable
    // id; a few cases over arbitrary key sets and seeds is plenty.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn batch_prefetch_on_off_and_scalar_agree_for_every_batchable_id(
        pos in prop::collection::hash_set("[a-z0-9]{1,20}", 8..200),
        seed in any::<u64>(),
    ) {
        let members: Vec<Vec<u8>> = pos.into_iter().map(String::into_bytes).collect();
        // Costed negatives ('!' is outside the member alphabet) so the
        // cost-aware filters exercise their full build path.
        let negatives: Vec<(Vec<u8>, f64)> = members
            .iter()
            .take(32)
            .enumerate()
            .map(|(i, k)| {
                let mut v = k.clone();
                v.push(b'!');
                (v, 1.0 + (i % 5) as f64)
            })
            .collect();
        let input = BuildInput::from_members(&members).with_costed_negatives(&negatives);

        let probes = mixed_probes(&members, 10_000);
        let slices: Vec<&[u8]> = probes.iter().map(Vec::as_slice).collect();

        for id in habf::core::registry::ids() {
            let spec = FilterSpec::by_id(id)
                .expect("listed id resolves")
                .bits_per_key(12.0)
                .seed(seed)
                .shards(if id.starts_with("sharded") { 3 } else { 1 });
            let filter = spec
                .build(&input)
                .unwrap_or_else(|e| panic!("{id} build failed: {e}"));
            let Some(batch): Option<&dyn BatchQuery> = filter.as_batch() else {
                continue; // id has no batch pipeline (e.g. xor)
            };

            let scalar: Vec<bool> = slices.iter().map(|k| filter.contains(k)).collect();
            // The prefetch switch is process-global; `scoped` serializes
            // this toggle against any other test toggling it in parallel
            // and restores the prior state when the guard drops.
            let off = {
                let _prefetch_off = habf::util::prefetch::scoped(false);
                batch.contains_batch(&slices)
            };
            let on = {
                let _prefetch_on = habf::util::prefetch::scoped(true);
                batch.contains_batch(&slices)
            };
            let par = batch.contains_batch_par(&slices, 3);

            prop_assert_eq!(&scalar, &off, "{}: batch(-prefetch) diverged from scalar", id);
            prop_assert_eq!(&scalar, &on, "{}: batch(+prefetch) diverged from scalar", id);
            prop_assert_eq!(&scalar, &par, "{}: parallel batch diverged from scalar", id);
        }
    }
}
