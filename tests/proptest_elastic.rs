//! Property-based invariants for the elastic (growable) filter layer.
//!
//! Two contracts are pinned here. First: growth is a *capability*, not
//! a best-effort — every fixed-capacity filter refuses inserts with a
//! typed error at the tenant boundary instead of silently degrading
//! its zero-FN promise or panicking. Second: the scalable stack keeps
//! zero false negatives across arbitrary insert bursts spanning many
//! generations, all the way past 8× its design capacity.

use habf::core::tenant::{InsertError, TenantStore};
use habf::core::{registry, AdaptPolicy, BuildInput, FilterSpec, ScalableHabf};
use habf::filters::Filter;
use habf::prelude::HabfConfig;
use proptest::prelude::*;

fn keys(prefix: &str, range: std::ops::Range<usize>) -> Vec<Vec<u8>> {
    range
        .map(|i| format!("{prefix}:{i}").into_bytes())
        .collect()
}

/// The non-growable refusal is not probabilistic, so pin it for every
/// registered id outside the proptest harness: `as_growable` is `None`
/// everywhere but the scalable stack, and the tenant surface turns
/// that into a typed `InsertError::NotGrowable` carrying the id.
#[test]
fn insert_past_capacity_on_fixed_filters_is_a_typed_error() {
    let members = keys("m", 0..64);
    let input = BuildInput::from_members(&members);
    for id in registry::ids() {
        if id == "scalable-habf" {
            continue;
        }
        let filter = FilterSpec::by_id(id)
            .expect("registered")
            .bits_per_key(10.0)
            .shards(2)
            .build(&input)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let store = TenantStore::new("t", filter, AdaptPolicy::cost_threshold(10.0))
            .with_members(members.clone());
        // Far past design capacity: the refusal must be typed, not a
        // panic, and must leave the tenant serving its original set.
        let burst = keys("late", 0..640);
        match store.insert_keys(&burst) {
            Err(InsertError::NotGrowable { id: got }) => assert_eq!(got, id),
            Ok(_) => panic!("{id}: accepted inserts without the grow capability"),
            Err(other) => panic!("{id}: wrong error {other:?}"),
        }
        let snap = store.snapshot();
        for k in &members {
            assert!(snap.contains(k), "{id}: refusal broke zero FN");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zero FN across generations: random insert bursts push the stack
    /// through 1..6 tiers, and every member ever added — built or
    /// inserted, in any tier — still answers `contains`.
    #[test]
    fn scalable_zero_fn_across_generations(
        built in 8usize..80,
        bursts in prop::collection::vec(1usize..200, 0..6),
        seed in any::<u64>(),
    ) {
        let members = keys("m", 0..built);
        let mut cfg = HabfConfig::with_total_bits((built * 10).max(256));
        cfg.seed = seed;
        let negatives: [(&[u8], f64); 0] = [];
        let refs: Vec<&[u8]> = members.iter().map(Vec::as_slice).collect();
        let mut filter = ScalableHabf::build(&refs, &negatives, &cfg);

        let mut inserted: Vec<Vec<u8>> = Vec::new();
        for (b, burst) in bursts.iter().enumerate() {
            for i in 0..*burst {
                let key = format!("burst{b}:{i}").into_bytes();
                filter.insert(&key);
                inserted.push(key);
            }
        }
        prop_assert!(filter.generations() >= 1);
        prop_assert!(filter.generations() <= filter.max_tiers());
        for k in members.iter().chain(&inserted) {
            prop_assert!(filter.contains(k), "dropped {:?}", k);
        }
        // The stack round-trips through the registry with the exact
        // same membership answer for every key it holds.
        let mut image = Vec::new();
        habf::core::persist::encode_container("scalable-habf", &filter.to_bytes(), &mut image);
        let loaded = registry::load(&image).expect("round trip");
        for k in members.iter().chain(&inserted) {
            prop_assert!(loaded.filter.contains(k), "round trip dropped {:?}", k);
        }
    }

    /// The acceptance pin: the stack absorbs at least 8× its design
    /// capacity with zero FN, whatever the seed and base size.
    #[test]
    fn scalable_sustains_8x_design_capacity(
        built in 16usize..64,
        seed in any::<u64>(),
    ) {
        let members = keys("m", 0..built);
        let mut cfg = HabfConfig::with_total_bits((built * 10).max(256));
        cfg.seed = seed;
        let negatives: [(&[u8], f64); 0] = [];
        let refs: Vec<&[u8]> = members.iter().map(Vec::as_slice).collect();
        let mut filter = ScalableHabf::build(&refs, &negatives, &cfg);

        let late = keys("late", 0..8 * built);
        for k in &late {
            filter.insert(k);
        }
        prop_assert!(
            filter.total_inserted() >= 8 * built,
            "absorbed only {} of {}",
            filter.total_inserted(),
            8 * built
        );
        for k in members.iter().chain(&late) {
            prop_assert!(filter.contains(k), "dropped {:?}", k);
        }
    }
}
