//! Property tests of the negative-hint pipeline: whatever mix of operator
//! hints (duplicates, member keys, shuffled costs) and mined FP feedback
//! the store receives, the hints assembled for a run build must be
//! key-unique, finite-cost, descending, capped, and disjoint from the
//! run's members.

use habf::lsm::{AdaptConfig, Lsm, LsmConfig};
use proptest::prelude::*;

fn member_key(i: usize) -> Vec<u8> {
    format!("member:{i:06}").into_bytes()
}

/// Operator hint batches with deliberate duplicate keys and shuffled
/// costs; `key_space` keys may overlap the member space below.
fn operator_hints() -> impl Strategy<Value = Vec<(usize, f64)>> {
    prop::collection::vec((0usize..400, 0.1f64..50.0), 0..120)
}

/// FP feedback events: key index (overlapping members and hints) + cost.
fn fp_events() -> impl Strategy<Value = Vec<(usize, f64)>> {
    prop::collection::vec((0usize..400, 0.1f64..20.0), 0..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mined + operator hints are always key-unique, finite-cost,
    /// descending, capped at 2·|entries|, and disjoint from the run's
    /// members — the full satellite contract.
    #[test]
    fn assembled_hints_obey_the_pipeline_contract(
        raw_hints in operator_hints(),
        fps in fp_events(),
        members in 1usize..300,
        deep in 0usize..200,
    ) {
        let mut db = Lsm::new(LsmConfig {
            memtable_capacity: 4096,
            level_fanout: 3,
            filter: None, // hint assembly is filter-agnostic
        });
        db.enable_adaptation(AdaptConfig::default());

        // A deeper level holding stale versions of some member keys plus
        // unrelated keys (sibling fill material).
        for i in 0..deep {
            db.put(member_key(i), b"stale".to_vec());
        }
        db.flush();

        // Operator hints: `hint:` keys and some keys that ARE members.
        let hints: Vec<(Vec<u8>, f64)> = raw_hints
            .iter()
            .map(|&(k, c)| {
                if k % 3 == 0 {
                    (member_key(k), c) // collides with the member space
                } else {
                    (format!("hint:{k:06}").into_bytes(), c)
                }
            })
            .collect();
        db.set_negative_hints(hints).expect("finite costs");

        // Mined feedback, also overlapping both spaces.
        for &(k, c) in &fps {
            let key = if k % 2 == 0 {
                member_key(k)
            } else {
                format!("fp:{k:06}").into_bytes()
            };
            db.report_miss(&key, c);
        }

        // The run being built: sorted, duplicate-free member entries.
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            (0..members).map(|i| (member_key(i), b"v".to_vec())).collect();
        let assembled = db.hints_for_run(&entries);

        // Capped.
        prop_assert!(assembled.len() <= 2 * entries.len());
        // Finite positive costs only.
        for (k, c) in &assembled {
            prop_assert!(c.is_finite() && *c > 0.0, "bad cost {c} for {:?}", k);
        }
        // Descending.
        for pair in assembled.windows(2) {
            prop_assert!(
                pair[0].1 >= pair[1].1,
                "not descending: {} then {}",
                pair[0].1,
                pair[1].1
            );
        }
        // Key-unique.
        let mut keys: Vec<&[u8]> = assembled.iter().map(|(k, _)| k.as_slice()).collect();
        keys.sort_unstable();
        let total = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), total, "duplicate key in assembled hints");
        // Disjoint from the run's members.
        for (k, _) in &assembled {
            prop_assert!(
                entries.binary_search_by(|(ek, _)| ek.cmp(k)).is_err(),
                "member {:?} leaked into the hint list",
                String::from_utf8_lossy(k)
            );
        }
    }

    /// `set_negative_hints` keeps exactly the max-cost entry per key no
    /// matter how the duplicates are arranged, and rejects non-finite
    /// costs wherever they hide.
    #[test]
    fn operator_hint_dedup_keeps_max_cost(
        raw in prop::collection::vec((0usize..50, 0.1f64..100.0), 1..200),
        poison in any::<bool>(),
        poison_at in 0usize..200,
    ) {
        let mut db = Lsm::new(LsmConfig::default());
        let mut hints: Vec<(Vec<u8>, f64)> = raw
            .iter()
            .map(|&(k, c)| (format!("k{k:03}").into_bytes(), c))
            .collect();

        if poison {
            let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -3.5];
            let at = poison_at % hints.len();
            hints[at].1 = bad[poison_at % bad.len()];
            prop_assert!(db.set_negative_hints(hints).is_err());
            return Ok(());
        }

        // Ground truth: per-key maximum.
        let mut expect: std::collections::HashMap<Vec<u8>, f64> = std::collections::HashMap::new();
        for (k, c) in &hints {
            let e = expect.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            if *c > *e {
                *e = *c;
            }
        }
        db.set_negative_hints(hints).expect("finite costs");
        let stored = db.negative_hints();
        prop_assert_eq!(stored.len(), expect.len(), "wrong key count");
        for (k, c) in stored {
            prop_assert_eq!(expect.get(k).copied(), Some(*c), "wrong cost kept");
        }
        for pair in stored.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1, "stored hints not descending");
        }
    }
}
